#include "stalecert/feed/applier.hpp"

#include <algorithm>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/dns/name.hpp"
#include "stalecert/feed/errors.hpp"
#include "stalecert/feed/format.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::feed {

namespace {

std::string digest_key(const crypto::Digest& digest) {
  return std::string(digest.begin(), digest.end());
}

/// Fixed-width AKI then serial: no two distinct pairs share bytes.
std::string issuer_serial_key(const crypto::Digest& aki,
                              const asn1::Bytes& serial) {
  std::string key(aki.begin(), aki.end());
  key.append(serial.begin(), serial.end());
  return key;
}

/// Distinct e2LDs of a certificate, first-seen name order — the same
/// per-certificate walk CertificateCorpus::index_range performs, so a new
/// certificate joins exactly the events by_e2ld would have joined it to.
std::vector<std::string> cert_e2lds(const x509::Certificate& cert) {
  std::vector<std::string> out;
  for (const auto& raw : cert.dns_names()) {
    if (const auto e2 = dns::e2ld(core::strip_wildcard(raw))) {
      if (std::find(out.begin(), out.end(), *e2) == out.end()) {
        out.push_back(*e2);
      }
    }
  }
  return out;
}

}  // namespace

DeltaApplier::DeltaApplier(
    store::LoadedWorld base,
    std::shared_ptr<const query::StalenessIndex> base_index,
    obs::PipelineObserver* observer)
    : world_(std::move(base)),
      index_(std::move(base_index)),
      observer_(observer),
      base_world_id_(world_id(world_.meta)) {
  if (!index_) throw FeedError("DeltaApplier: base index is null");
  rebuild_state();
}

void DeltaApplier::rebuild_state() {
  const core::CertificateCorpus& corpus = index_->corpus();

  // Replay collect()'s dedup bookkeeping over the stored logs so apply()
  // can continue the funnel where the base run left off. Precertificates
  // and their issued forms share the dedup fingerprint but not a serial,
  // so name counts can be taken at first sight of each fingerprint.
  dedup_.clear();
  fqdn_counts_.clear();
  anomalous_.clear();
  const std::uint64_t max_certs = ct::CollectOptions{}.max_certs_per_fqdn;
  for (const auto& log : world_.ct_logs.logs()) {
    if (!log.trust().chrome && !log.trust().apple) continue;
    for (const auto& entry : log.entries()) {
      const bool precert = entry.certificate.is_precertificate();
      auto [it, inserted] =
          dedup_.try_emplace(digest_key(entry.certificate.dedup_fingerprint()),
                             CollectState{.precert = precert, .dropped = false});
      if (inserted) {
        for (const auto& name : entry.certificate.dns_names()) {
          ++fqdn_counts_[name];
        }
      } else if (it->second.precert && !precert) {
        it->second.precert = false;
      }
    }
  }
  for (const auto& [name, count] : fqdn_counts_) {
    if (count > max_certs) anomalous_.insert(name);
  }
  collect_stats_ = index_->result().collect_stats;
  if (collect_stats_.after_dedup != dedup_.size()) {
    // Free structural sanity check that the index really was built from
    // this world: the replayed dedup funnel must land where the index's
    // recorded funnel did (full equality would re-run the pipeline).
    throw DeltaMismatchError(
        "base index reports " + std::to_string(collect_stats_.after_dedup) +
        " deduplicated certificates but the loaded world yields " +
        std::to_string(dedup_.size()));
  }

  // Revocation join state: which corpus certificates carry each
  // (AKI, serial) key, and which keys have already been observed revoked.
  key_to_certs_.clear();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (const auto is = corpus.at(i).issuer_serial()) {
      key_to_certs_[issuer_serial_key(is->authority_key_id, is->serial)]
          .push_back(i);
    }
  }
  revocation_keys_.clear();
  for (const auto& entry : world_.revocations.entries()) {
    revocation_keys_.insert(
        issuer_serial_key(entry.authority_key_id, entry.serial));
  }
  join_stats_ = index_->result().revocations.join_stats;

  // Registrant-change state: the historical re-registration events, keyed
  // the way by_e2ld(event.domain) keys the join.
  rereg_events_ = world_.re_registrations();
  rereg_by_domain_.clear();
  for (std::size_t i = 0; i < rereg_events_.size(); ++i) {
    rereg_by_domain_[util::to_lower(rereg_events_[i].domain)].push_back(i);
  }

  // Managed-departure state: all historical departure events plus the
  // detector's first-event-wins dedup replayed over the base corpus.
  tls_options_.delegation_patterns = world_.meta.delegation_patterns;
  tls_options_.managed_san_pattern = world_.meta.managed_san_pattern;
  managed_enabled_ = !tls_options_.delegation_patterns.empty() &&
                     !tls_options_.managed_san_pattern.empty();
  departures_.clear();
  reported_.clear();
  if (managed_enabled_) {
    departures_ = core::detect_departures(world_.adns, tls_options_);
    for (const auto& event : departures_) {
      const auto e2 = dns::e2ld(event.domain);
      for (const std::size_t index :
           corpus.by_e2ld(e2.value_or(event.domain))) {
        if (core::classify_departure_match(corpus.at(index), event,
                                           tls_options_) ==
            core::DepartureJoinOutcome::kKept) {
          reported_.insert({index, event.domain});
        }
      }
    }
  }
}

void DeltaApplier::validate(const WorldDelta& delta) const {
  if (delta.meta.base_world_id != base_world_id_) {
    throw DeltaMismatchError(
        "delta binds to world id " + std::to_string(delta.meta.base_world_id) +
        " (profile \"" + delta.meta.profile + "\", seed " +
        std::to_string(delta.meta.seed) + "); this applier serves world id " +
        std::to_string(base_world_id_) + " (profile \"" + world_.meta.profile +
        "\", seed " + std::to_string(world_.meta.seed) + ")");
  }
  const util::Date horizon = world_.meta.end;
  if (delta.meta.from_day <= horizon) {
    throw DeltaSequenceError(
        "delta covers " + delta.meta.from_day.to_string() + ".." +
        delta.meta.to_day.to_string() + " but the horizon is already " +
        horizon.to_string() + " (double apply or out-of-order delta)");
  }
  if (delta.meta.from_day > horizon + 1) {
    throw DeltaSequenceError("delta starts " + delta.meta.from_day.to_string() +
                             " but the horizon is " + horizon.to_string() +
                             ": days " + (horizon + 1).to_string() + ".." +
                             (delta.meta.from_day - 1).to_string() +
                             " are missing");
  }
  for (const auto& log_delta : delta.ct) {
    const ct::CtLog* log = nullptr;
    for (const auto& candidate : world_.ct_logs.logs()) {
      if (candidate.id() == log_delta.log_id) {
        log = &candidate;
        break;
      }
    }
    if (log == nullptr) {
      throw DeltaMismatchError("delta references unknown CT log id " +
                               std::to_string(log_delta.log_id));
    }
    if (log->size() != log_delta.base_entry_count) {
      throw DeltaSequenceError(
          "CT log " + log->name() + " has " + std::to_string(log->size()) +
          " entries but the delta expects " +
          std::to_string(log_delta.base_entry_count) + " (wrong base)");
    }
  }
  if (!delta.adns.empty()) {
    const auto last = world_.adns.last_date();
    if (last && delta.adns.front().date <= *last) {
      throw DeltaSequenceError(
          "delta DNS snapshot dated " + delta.adns.front().date.to_string() +
          " is not after the last stored scan day " + last->to_string());
    }
  }
}

DeltaApplier::ApplyResult DeltaApplier::apply(const WorldDelta& delta) {
  const obs::StageScope scope(observer_, "feed_apply");
  validate(delta);
  // Validation passed: every typed rejection has been thrown. What follows
  // mutates applier state and must run to completion (exceptions below
  // this point would indicate a bug, not a bad delta).

  const std::uint64_t max_certs = ct::CollectOptions{}.max_certs_per_fqdn;
  const core::CertificateCorpus& base_corpus = index_->corpus();
  const std::size_t base_size = base_corpus.size();
  bool needs_rebuild = false;

  // --- CT: continue collect()'s dedup funnel over the delta entries. ---
  struct Pending {
    x509::Certificate cert;
    std::string key;
  };
  std::vector<Pending> pending;
  std::unordered_map<std::string, std::size_t> pending_index;
  for (const auto& log_delta : delta.ct) {
    const ct::CtLog* log = nullptr;
    for (const auto& candidate : world_.ct_logs.logs()) {
      if (candidate.id() == log_delta.log_id) log = &candidate;
    }
    if (!log->trust().chrome && !log->trust().apple) continue;
    for (const auto& entry : log_delta.entries) {
      ++collect_stats_.raw_entries;
      std::string key = digest_key(entry.certificate.dedup_fingerprint());
      if (const auto pit = pending_index.find(key);
          pit != pending_index.end()) {
        x509::Certificate& kept = pending[pit->second].cert;
        if (kept.is_precertificate() &&
            !entry.certificate.is_precertificate()) {
          kept = entry.certificate;  // precert superseded within the delta
        }
        continue;
      }
      if (const auto dit = dedup_.find(key); dit != dedup_.end()) {
        if (dit->second.precert && !entry.certificate.is_precertificate()) {
          // The issued form of a base-corpus precertificate arrived after
          // the day boundary; the base certificate must be REPLACED, which
          // a patch cannot express. (The simulator logs both forms on the
          // same day, so this only fires on hand-crafted inputs.)
          needs_rebuild = true;
        }
        continue;
      }
      pending_index.emplace(key, pending.size());
      pending.push_back({entry.certificate, std::move(key)});
      ++collect_stats_.after_dedup;
    }
  }

  // --- Anomaly filter: drop new certificates naming already-anomalous
  // FQDNs; a name newly crossing the threshold invalidates base
  // certificates and forces a rebuild. ---
  std::vector<char> dropped(pending.size(), 0);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto names = pending[i].cert.dns_names();
    if (std::any_of(names.begin(), names.end(), [&](const std::string& n) {
          return anomalous_.contains(n);
        })) {
      dropped[i] = 1;
      ++collect_stats_.dropped_certificates;
    }
    for (const auto& name : names) {
      if (++fqdn_counts_[name] > max_certs && !anomalous_.contains(name)) {
        needs_rebuild = true;
      }
    }
  }

  // --- Revocation re-observations that would change a base join. ---
  for (const auto& entry : delta.revocations) {
    if (!revocation_keys_.contains(
            issuer_serial_key(entry.authority_key_id, entry.serial))) {
      continue;
    }
    const auto* existing =
        world_.revocations.lookup(entry.authority_key_id, entry.serial);
    if (existing != nullptr &&
        entry.observation.revocation_date < existing->revocation_date) {
      needs_rebuild = true;  // add() keeps the earliest: base joins change
    }
  }

  if (needs_rebuild) {
    commit(delta);
    return rebuild();
  }

  // --- Extended corpus: base + surviving new certificates. ---
  std::vector<x509::Certificate> appended;
  appended.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!dropped[i]) appended.push_back(pending[i].cert);
  }
  const std::uint64_t new_certificates = appended.size();
  core::CertificateCorpus corpus(base_corpus, std::move(appended));

  // --- Join 1: revocations. New observations against base certificates;
  // new certificates against ALL observations. The two passes are
  // disjoint: a delta never re-emits a key the base store already holds,
  // so a (new cert, new obs) pair is seen exactly once. ---
  revocation::JoinFilters filters;
  filters.min_revocation_date = world_.meta.revocation_cutoff;
  std::vector<core::StaleCertificate> new_all_revoked;
  const auto join_revocation =
      [&](std::size_t cert_index,
          const revocation::RevocationStore::Observation& obs) {
        ++join_stats_.matched;
        switch (core::classify_revocation_match(corpus.at(cert_index), obs,
                                                filters)) {
          case core::RevocationJoinOutcome::kBeforeValid:
            ++join_stats_.dropped_before_valid;
            return;
          case core::RevocationJoinOutcome::kAfterExpiry:
            ++join_stats_.dropped_after_expiry;
            return;
          case core::RevocationJoinOutcome::kBeforeCutoff:
            ++join_stats_.dropped_before_cutoff;
            return;
          case core::RevocationJoinOutcome::kKept:
            break;
        }
        ++join_stats_.kept;
        new_all_revoked.push_back(
            core::make_revoked_stale(cert_index, corpus.at(cert_index), obs));
      };

  std::unordered_map<std::string, std::vector<std::size_t>> new_key_to_certs;
  for (std::size_t i = base_size; i < corpus.size(); ++i) {
    const auto is = corpus.at(i).issuer_serial();
    if (!is) continue;
    const std::string key =
        issuer_serial_key(is->authority_key_id, is->serial);
    new_key_to_certs[key].push_back(i);
    // Base observations joining the new certificate (the store still holds
    // only pre-delta observations at this point).
    if (const auto* obs = world_.revocations.lookup(is->authority_key_id,
                                                    is->serial)) {
      join_revocation(i, *obs);
    }
  }
  for (const auto& entry : delta.revocations) {
    const std::string key =
        issuer_serial_key(entry.authority_key_id, entry.serial);
    if (revocation_keys_.contains(key)) continue;  // harmless re-observation
    if (const auto it = key_to_certs_.find(key); it != key_to_certs_.end()) {
      for (const std::size_t index : it->second) {
        join_revocation(index, entry.observation);
      }
    }
    if (const auto it = new_key_to_certs.find(key);
        it != new_key_to_certs.end()) {
      for (const std::size_t index : it->second) {
        join_revocation(index, entry.observation);
      }
    }
  }

  // --- Join 2: registrant changes. New events against the extended
  // corpus; historical events against new certificates only (historical x
  // base pairs are already in the base result). ---
  std::vector<core::StaleCertificate> new_registrant;
  std::vector<whois::NewRegistration> new_rereg;
  for (const auto& event : delta.registrations) {
    if (event.previous_creation_date) new_rereg.push_back(event);
  }
  for (const auto& event : new_rereg) {
    for (const std::size_t index : corpus.by_e2ld(event.domain)) {
      if (core::registrant_change_hits(corpus.at(index),
                                       event.creation_date)) {
        new_registrant.push_back(
            core::make_registrant_stale(index, event, corpus.at(index)));
      }
    }
  }
  for (std::size_t i = base_size; i < corpus.size(); ++i) {
    for (const auto& e2 : cert_e2lds(corpus.at(i))) {
      const auto it = rereg_by_domain_.find(e2);
      if (it == rereg_by_domain_.end()) continue;
      for (const std::size_t event_index : it->second) {
        const auto& event = rereg_events_[event_index];
        if (core::registrant_change_hits(corpus.at(i), event.creation_date)) {
          new_registrant.push_back(
              core::make_registrant_stale(i, event, corpus.at(i)));
        }
      }
    }
  }

  // --- Join 3: managed-TLS departures. Historical events against new
  // certificates FIRST (they precede the delta's events chronologically,
  // and the first-event-wins dedup must see them in that order), then the
  // delta's events against everything. ---
  std::vector<core::StaleCertificate> new_departure;
  std::vector<core::DepartureEvent> new_events;
  if (managed_enabled_) {
    const dns::DailySnapshot* previous =
        world_.adns.days() > 0 ? &world_.adns.day(world_.adns.days() - 1)
                               : nullptr;
    for (const auto& snapshot : delta.adns) {
      if (previous != nullptr) {
        const auto events =
            core::departures_between(*previous, snapshot, tls_options_);
        new_events.insert(new_events.end(), events.begin(), events.end());
      }
      previous = &snapshot;
    }
    const auto join_departure = [&](const core::DepartureEvent& event,
                                    bool new_certs_only) {
      const auto e2 = dns::e2ld(event.domain);
      for (const std::size_t index :
           corpus.by_e2ld(e2.value_or(event.domain))) {
        if (new_certs_only && index < base_size) continue;
        if (core::classify_departure_match(corpus.at(index), event,
                                           tls_options_) !=
            core::DepartureJoinOutcome::kKept) {
          continue;
        }
        if (!reported_.insert({index, event.domain}).second) continue;
        new_departure.push_back(
            core::make_departure_stale(index, event, corpus.at(index)));
      }
    };
    for (const auto& event : departures_) join_departure(event, true);
    for (const auto& event : new_events) join_departure(event, false);
  }

  // --- Fold into a successor snapshot. ---
  join_stats_.corpus_size = corpus.size();
  const std::uint64_t new_stale_records =
      static_cast<std::uint64_t>(std::count_if(
          new_all_revoked.begin(), new_all_revoked.end(),
          [](const core::StaleCertificate& s) {
            return s.reason == revocation::ReasonCode::kKeyCompromise;
          })) +
      new_registrant.size() + new_departure.size();

  query::IndexPatch patch;
  patch.base_certificates = base_size;
  patch.collect_stats = collect_stats_;
  patch.join_stats = join_stats_;
  patch.new_all_revoked = std::move(new_all_revoked);
  patch.new_registrant_change = std::move(new_registrant);
  patch.new_managed_departure = std::move(new_departure);
  patch.new_end = delta.meta.to_day;

  // Carry the join state forward for the next delta.
  for (std::size_t i = base_size; i < corpus.size(); ++i) {
    if (const auto is = corpus.at(i).issuer_serial()) {
      key_to_certs_[issuer_serial_key(is->authority_key_id, is->serial)]
          .push_back(i);
    }
  }
  for (const auto& entry : delta.revocations) {
    revocation_keys_.insert(
        issuer_serial_key(entry.authority_key_id, entry.serial));
  }
  for (auto& p : pending) {
    dedup_.try_emplace(std::move(p.key),
                       CollectState{.precert = p.cert.is_precertificate(),
                                    .dropped = false});
  }
  for (const auto& event : new_rereg) {
    rereg_by_domain_[util::to_lower(event.domain)].push_back(
        rereg_events_.size());
    rereg_events_.push_back(event);
  }
  departures_.insert(departures_.end(), new_events.begin(), new_events.end());

  patch.corpus = std::move(corpus);
  auto next = index_->with_patch(std::move(patch), observer_);
  commit(delta);
  index_ = std::move(next);
  ++deltas_applied_;

  if (scope.enabled()) {
    scope.count("new_certificates", new_certificates);
    scope.count("new_stale_records", new_stale_records);
    scope.gauge("horizon_days",
                static_cast<double>(world_.meta.end.days_since_epoch()));
  }
  ApplyResult result;
  result.index = index_;
  result.new_certificates = new_certificates;
  result.new_stale_records = new_stale_records;
  return result;
}

void DeltaApplier::commit(const WorldDelta& delta) {
  for (const auto& log_delta : delta.ct) {
    for (auto& log : world_.ct_logs.logs()) {
      if (log.id() != log_delta.log_id) continue;
      for (const auto& entry : log_delta.entries) {
        log.restore_entry(entry.index, entry.timestamp, entry.certificate);
      }
      break;
    }
  }
  for (const auto& entry : delta.revocations) {
    world_.revocations.add(entry.authority_key_id, entry.serial,
                           entry.observation);
  }
  world_.registrations.insert(world_.registrations.end(),
                              delta.registrations.begin(),
                              delta.registrations.end());
  for (const auto& snapshot : delta.adns) world_.adns.add(snapshot);
  world_.stats = delta.stats;
  world_.meta.end = delta.meta.to_day;
}

DeltaApplier::ApplyResult DeltaApplier::rebuild() {
  ++rebuilds_;
  ++deltas_applied_;
  const std::uint64_t old_certs = index_->corpus().size();
  const std::uint64_t old_records = index_->stale_records().size();

  core::PipelineConfig config;
  config.revocation_cutoff = world_.meta.revocation_cutoff;
  config.delegation_patterns = world_.meta.delegation_patterns;
  config.managed_san_pattern = world_.meta.managed_san_pattern;
  config.observer = observer_;
  core::PipelineResult result =
      core::run_pipeline(world_.ct_logs, world_.revocations,
                         world_.re_registrations(), world_.adns, config);
  index_ = std::make_shared<const query::StalenessIndex>(
      std::move(result), world_.meta, observer_);
  rebuild_state();

  ApplyResult out;
  out.index = index_;
  out.rebuilt = true;
  const std::uint64_t certs = index_->corpus().size();
  const std::uint64_t records = index_->stale_records().size();
  out.new_certificates = certs > old_certs ? certs - old_certs : 0;
  out.new_stale_records = records > old_records ? records - old_records : 0;
  return out;
}

}  // namespace stalecert::feed
