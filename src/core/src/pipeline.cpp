#include "stalecert/core/pipeline.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::core {

std::vector<StaleCertificate> PipelineResult::all_third_party() const {
  std::vector<StaleCertificate> all;
  all.reserve(revocations.key_compromise.size() + registrant_change.size() +
              managed_departure.size());
  all.insert(all.end(), revocations.key_compromise.begin(),
             revocations.key_compromise.end());
  all.insert(all.end(), registrant_change.begin(), registrant_change.end());
  all.insert(all.end(), managed_departure.begin(), managed_departure.end());
  return all;
}

const std::vector<StaleCertificate>& PipelineResult::of(StaleClass cls) const {
  switch (cls) {
    case StaleClass::kKeyCompromise: return revocations.key_compromise;
    case StaleClass::kRegistrantChange: return registrant_change;
    case StaleClass::kManagedTlsDeparture: return managed_departure;
  }
  throw LogicError("PipelineResult::of: unknown class");
}

PipelineResult run_pipeline(const ct::LogSet& logs,
                            const revocation::RevocationStore& revocations,
                            const std::vector<whois::NewRegistration>& registrations,
                            const dns::SnapshotStore& adns,
                            const PipelineConfig& config) {
  PipelineResult result;

  ct::CollectOptions collect;
  collect.max_certs_per_fqdn = config.max_certs_per_fqdn;
  result.corpus =
      CertificateCorpus(logs.collect(collect, &result.collect_stats));

  revocation::JoinFilters filters;
  filters.min_revocation_date = config.revocation_cutoff;
  result.revocations = analyze_revocations(result.corpus, revocations, filters);

  RegistrantChangeOptions posture;
  posture.require_previous_observation = config.require_previous_whois_observation;
  result.registrant_change =
      detect_registrant_change(result.corpus, registrations, posture);

  if (!config.delegation_patterns.empty() && !config.managed_san_pattern.empty()) {
    ManagedTlsOptions options;
    options.delegation_patterns = config.delegation_patterns;
    options.managed_san_pattern = config.managed_san_pattern;
    result.managed_departure =
        detect_managed_tls_departure(result.corpus, adns, options);
  }
  return result;
}

}  // namespace stalecert::core
