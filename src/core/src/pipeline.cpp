#include "stalecert/core/pipeline.hpp"

#include <cstdlib>

#include "stalecert/obs/observer.hpp"

namespace stalecert::core {

std::vector<StaleCertificate> PipelineResult::all_third_party() const {
  std::vector<StaleCertificate> all;
  all.reserve(revocations.key_compromise.size() + registrant_change.size() +
              managed_departure.size());
  all.insert(all.end(), revocations.key_compromise.begin(),
             revocations.key_compromise.end());
  all.insert(all.end(), registrant_change.begin(), registrant_change.end());
  all.insert(all.end(), managed_departure.begin(), managed_departure.end());
  return all;
}

const std::vector<StaleCertificate>& PipelineResult::of(StaleClass cls) const {
  // Exhaustive: the switch covers every StaleClass (-Wswitch flags a
  // missing case) and the static_assert pins the expected cardinality, so a
  // new class fails the build here instead of throwing at runtime.
  static_assert(kStaleClassCount == 3,
                "new StaleClass: add a case to PipelineResult::of");
  switch (cls) {
    case StaleClass::kKeyCompromise: return revocations.key_compromise;
    case StaleClass::kRegistrantChange: return registrant_change;
    case StaleClass::kManagedTlsDeparture: return managed_departure;
  }
  std::abort();  // unreachable: all enumerators handled above
}

PipelineResult run_pipeline(const ct::LogSet& logs,
                            const revocation::RevocationStore& revocations,
                            const std::vector<whois::NewRegistration>& registrations,
                            const dns::SnapshotStore& adns,
                            const PipelineConfig& config) {
  obs::PipelineObserver* observer = config.observer;
  const obs::StageScope scope(observer, "pipeline");
  PipelineResult result;

  ct::CollectOptions collect;
  collect.max_certs_per_fqdn = config.max_certs_per_fqdn;
  result.corpus = CertificateCorpus(
      logs.collect(collect, &result.collect_stats, observer));

  revocation::JoinFilters filters;
  filters.min_revocation_date = config.revocation_cutoff;
  result.revocations =
      analyze_revocations(result.corpus, revocations, filters, observer);

  RegistrantChangeOptions posture;
  posture.require_previous_observation = config.require_previous_whois_observation;
  result.registrant_change =
      detect_registrant_change(result.corpus, registrations, posture, observer);

  if (!config.delegation_patterns.empty() && !config.managed_san_pattern.empty()) {
    ManagedTlsOptions options;
    options.delegation_patterns = config.delegation_patterns;
    options.managed_san_pattern = config.managed_san_pattern;
    result.managed_departure =
        detect_managed_tls_departure(result.corpus, adns, options, observer);
  }

  if (scope.enabled()) {
    scope.count("stale_key_compromise", result.revocations.key_compromise.size());
    scope.count("stale_registrant_change", result.registrant_change.size());
    scope.count("stale_managed_departure", result.managed_departure.size());
    scope.count("stale_total", result.revocations.key_compromise.size() +
                                   result.registrant_change.size() +
                                   result.managed_departure.size());
    scope.gauge("corpus_certs", static_cast<double>(result.corpus.size()));
  }
  return result;
}

}  // namespace stalecert::core
