#include "stalecert/core/bygone.hpp"

#include <algorithm>

#include "stalecert/dns/name.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::core {

util::Date BygoneReport::safe_after() const {
  util::Date latest = acquisition_date;
  for (const auto& bygone : certificates) {
    latest = std::max(latest, acquisition_date + bygone.residual_days);
  }
  return latest;
}

BygoneReport check_bygone(const CertificateCorpus& corpus, const std::string& domain,
                          util::Date acquisition_date) {
  BygoneReport report;
  report.domain = util::to_lower(domain);
  report.acquisition_date = acquisition_date;

  for (const std::size_t index : corpus.by_e2ld(report.domain)) {
    const auto& cert = corpus.at(index);
    // Issued before the acquisition (so requested by someone else), and
    // still valid strictly after it.
    if (!(cert.not_before() < acquisition_date &&
          acquisition_date < cert.not_after())) {
      continue;
    }
    BygoneCertificate bygone;
    bygone.corpus_index = index;
    bygone.residual_days = cert.not_after() - acquisition_date;
    for (const auto& raw : cert.dns_names()) {
      const std::string name = strip_wildcard(raw);
      if (dns::e2ld(name) == report.domain) bygone.covered_names.push_back(raw);
    }
    report.certificates.push_back(std::move(bygone));
  }
  std::sort(report.certificates.begin(), report.certificates.end(),
            [](const auto& a, const auto& b) {
              return a.residual_days > b.residual_days;
            });
  return report;
}

}  // namespace stalecert::core
