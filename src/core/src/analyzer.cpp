#include "stalecert/core/analyzer.hpp"

#include <set>

#include "stalecert/dns/name.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::core {
namespace {

double per_day(std::uint64_t total, std::int64_t days) {
  return days <= 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(days);
}

}  // namespace

double StaleSummary::daily_certs() const { return per_day(stale_certs, window_days); }
double StaleSummary::daily_fqdns() const { return per_day(stale_fqdns, window_days); }
double StaleSummary::daily_e2lds() const { return per_day(stale_e2lds, window_days); }

StalenessAnalyzer::StalenessAnalyzer(const CertificateCorpus& corpus,
                                     std::vector<StaleCertificate> stale)
    : corpus_(&corpus), stale_(std::move(stale)) {}

std::vector<std::string> StalenessAnalyzer::at_risk_fqdns(
    const StaleCertificate& record) const {
  const auto& cert = corpus_->at(record.corpus_index);
  std::vector<std::string> out;
  for (const auto& raw : cert.dns_names()) {
    const std::string name = strip_wildcard(raw);
    if (record.cls == StaleClass::kKeyCompromise) {
      out.push_back(name);
      continue;
    }
    const auto e2 = dns::e2ld(name);
    if (e2 && *e2 == record.trigger_domain) out.push_back(name);
  }
  return out;
}

StaleSummary StalenessAnalyzer::summarize(util::Date first, util::Date last) const {
  if (last < first) throw LogicError("summarize: last < first");
  StaleSummary summary;
  summary.window_days = (last - first) + 1;
  std::set<std::string> fqdns;
  std::set<std::string> e2lds;
  for (const auto& record : stale_) {
    if (record.event_date < first || record.event_date > last) continue;
    ++summary.stale_certs;
    for (auto& name : at_risk_fqdns(record)) fqdns.insert(std::move(name));
    e2lds.insert(record.trigger_domain);
  }
  summary.stale_fqdns = fqdns.size();
  summary.stale_e2lds = e2lds.size();
  return summary;
}

std::map<util::YearMonth, std::uint64_t> StalenessAnalyzer::monthly_counts() const {
  std::map<util::YearMonth, std::uint64_t> out;
  for (const auto& record : stale_) ++out[util::YearMonth::of(record.event_date)];
  return out;
}

std::map<util::YearMonth, std::uint64_t> StalenessAnalyzer::monthly_e2lds() const {
  std::map<util::YearMonth, std::set<std::string>> sets;
  for (const auto& record : stale_) {
    sets[util::YearMonth::of(record.event_date)].insert(record.trigger_domain);
  }
  std::map<util::YearMonth, std::uint64_t> out;
  for (const auto& [month, domains] : sets) out[month] = domains.size();
  return out;
}

std::map<util::YearMonth, util::LabelCounter> StalenessAnalyzer::monthly_by_label(
    bool use_organization) const {
  std::map<util::YearMonth, util::LabelCounter> out;
  for (const auto& record : stale_) {
    const auto& issuer = corpus_->at(record.corpus_index).issuer();
    const std::string label =
        use_organization ? issuer.organization : issuer.common_name;
    out[util::YearMonth::of(record.event_date)].add(
        label.empty() ? "(unknown)" : label);
  }
  return out;
}

util::EmpiricalDistribution StalenessAnalyzer::staleness_distribution() const {
  util::EmpiricalDistribution dist;
  for (const auto& record : stale_) {
    dist.add(static_cast<double>(record.staleness_days()));
  }
  return dist;
}

util::EmpiricalDistribution StalenessAnalyzer::staleness_distribution_for_year(
    int year) const {
  util::EmpiricalDistribution dist;
  for (const auto& record : stale_) {
    if (record.event_date.year() == year) {
      dist.add(static_cast<double>(record.staleness_days()));
    }
  }
  return dist;
}

util::EmpiricalDistribution StalenessAnalyzer::time_to_invalidation() const {
  util::EmpiricalDistribution dist;
  for (const auto& record : stale_) {
    const auto& cert = corpus_->at(record.corpus_index);
    dist.add(static_cast<double>(record.event_date - cert.not_before()));
  }
  return dist;
}

std::vector<std::string> StalenessAnalyzer::affected_e2lds() const {
  std::set<std::string> unique;
  for (const auto& record : stale_) unique.insert(record.trigger_domain);
  return std::vector<std::string>(unique.begin(), unique.end());
}

double StalenessAnalyzer::total_staleness_days() const {
  double total = 0;
  for (const auto& record : stale_) {
    total += static_cast<double>(record.staleness_days());
  }
  return total;
}

}  // namespace stalecert::core
