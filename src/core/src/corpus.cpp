#include "stalecert/core/corpus.hpp"

#include <algorithm>

#include "stalecert/dns/name.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::core {

std::string strip_wildcard(const std::string& name) {
  return util::starts_with(name, "*.") ? name.substr(2) : name;
}

CertificateCorpus::CertificateCorpus(std::vector<x509::Certificate> certificates)
    : certificates_(std::move(certificates)) {
  index_range(0);
}

CertificateCorpus::CertificateCorpus(const CertificateCorpus& base,
                                     std::vector<x509::Certificate> appended)
    : certificates_(base.certificates_),
      e2ld_index_(base.e2ld_index_),
      fqdn_index_(base.fqdn_index_) {
  const std::size_t first = certificates_.size();
  certificates_.reserve(first + appended.size());
  for (auto& cert : appended) certificates_.push_back(std::move(cert));
  index_range(first);
}

void CertificateCorpus::index_range(std::size_t first) {
  for (std::size_t i = first; i < certificates_.size(); ++i) {
    std::vector<std::string> seen_e2lds;
    for (const auto& raw : certificates_[i].dns_names()) {
      const std::string name = strip_wildcard(raw);
      auto& fqdn_list = fqdn_index_[name];
      if (fqdn_list.empty() || fqdn_list.back() != i) fqdn_list.push_back(i);
      if (const auto e2 = dns::e2ld(name)) {
        if (std::find(seen_e2lds.begin(), seen_e2lds.end(), *e2) ==
            seen_e2lds.end()) {
          seen_e2lds.push_back(*e2);
          e2ld_index_[*e2].push_back(i);
        }
      }
    }
  }
}

const x509::Certificate& CertificateCorpus::at(std::size_t index) const {
  if (index >= certificates_.size()) {
    throw LogicError("CertificateCorpus: index out of range");
  }
  return certificates_[index];
}

std::vector<std::size_t> CertificateCorpus::by_e2ld(const std::string& e2ld) const {
  const auto it = e2ld_index_.find(util::to_lower(e2ld));
  return it == e2ld_index_.end() ? std::vector<std::size_t>{} : it->second;
}

std::vector<std::size_t> CertificateCorpus::by_fqdn(const std::string& fqdn) const {
  const auto it = fqdn_index_.find(util::to_lower(fqdn));
  return it == fqdn_index_.end() ? std::vector<std::size_t>{} : it->second;
}

CertificateCorpus::OverlapStats CertificateCorpus::overlap_stats(
    const std::string& e2ld) const {
  OverlapStats stats;
  // Sweep line over validity begin/end events.
  std::vector<std::pair<util::Date, int>> events;
  for (const std::size_t index : by_e2ld(e2ld)) {
    const auto& cert = certificates_[index];
    ++stats.certificates;
    events.emplace_back(cert.not_before(), +1);
    events.emplace_back(cert.not_after(), -1);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    // Ends sort before begins on the same day (half-open intervals).
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
  std::size_t current = 0;
  for (const auto& [date, delta] : events) {
    if (delta > 0) {
      ++current;
      if (current > stats.max_concurrent) {
        stats.max_concurrent = current;
        stats.peak_date = date;
      }
    } else {
      --current;
    }
  }
  return stats;
}

std::vector<std::string> CertificateCorpus::e2lds() const {
  std::vector<std::string> out;
  out.reserve(e2ld_index_.size());
  for (const auto& [e2ld, indices] : e2ld_index_) out.push_back(e2ld);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace stalecert::core
