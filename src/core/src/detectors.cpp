#include "stalecert/core/detectors.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "stalecert/dns/name.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::core {

std::string primary_e2ld(const x509::Certificate& cert) {
  for (const auto& name : cert.dns_names()) {
    if (const auto e2 = dns::e2ld(strip_wildcard(name))) return *e2;
  }
  return cert.dns_names().empty() ? std::string{} : cert.dns_names().front();
}

RevocationJoinOutcome classify_revocation_match(
    const x509::Certificate& cert,
    const revocation::RevocationStore::Observation& observation,
    const revocation::JoinFilters& filters) {
  if (observation.revocation_date < cert.not_before()) {
    return RevocationJoinOutcome::kBeforeValid;
  }
  if (observation.revocation_date >= cert.not_after()) {
    return RevocationJoinOutcome::kAfterExpiry;
  }
  if (filters.min_revocation_date &&
      observation.revocation_date < *filters.min_revocation_date) {
    return RevocationJoinOutcome::kBeforeCutoff;
  }
  return RevocationJoinOutcome::kKept;
}

StaleCertificate make_revoked_stale(
    std::size_t corpus_index, const x509::Certificate& cert,
    const revocation::RevocationStore::Observation& observation) {
  StaleCertificate stale;
  stale.corpus_index = corpus_index;
  stale.cls = StaleClass::kKeyCompromise;
  stale.event_date = observation.revocation_date;
  stale.staleness =
      util::DateInterval{observation.revocation_date, cert.not_after()};
  stale.trigger_domain = primary_e2ld(cert);
  stale.reason = observation.reason;
  return stale;
}

RevocationAnalysisResult analyze_revocations(
    const CertificateCorpus& corpus, const revocation::RevocationStore& store,
    const revocation::JoinFilters& filters, obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "revocation_join");
  RevocationAnalysisResult result;
  // Re-run the join per corpus index so StaleCertificate can reference the
  // corpus rather than copying certificates.
  revocation::JoinStats stats;
  stats.corpus_size = corpus.size();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& cert = corpus.at(i);
    const auto issuer_serial = cert.issuer_serial();
    if (!issuer_serial) continue;
    const auto* obs =
        store.lookup(issuer_serial->authority_key_id, issuer_serial->serial);
    if (!obs) continue;
    ++stats.matched;
    switch (classify_revocation_match(cert, *obs, filters)) {
      case RevocationJoinOutcome::kBeforeValid:
        ++stats.dropped_before_valid;
        continue;
      case RevocationJoinOutcome::kAfterExpiry:
        ++stats.dropped_after_expiry;
        continue;
      case RevocationJoinOutcome::kBeforeCutoff:
        ++stats.dropped_before_cutoff;
        continue;
      case RevocationJoinOutcome::kKept:
        break;
    }
    ++stats.kept;

    StaleCertificate stale = make_revoked_stale(i, cert, *obs);
    if (obs->reason == revocation::ReasonCode::kKeyCompromise) {
      result.key_compromise.push_back(stale);
    }
    result.all_revoked.push_back(std::move(stale));
  }
  result.join_stats = stats;
  if (scope.enabled()) {
    // Funnel identity: matched == kept + dropped_before_valid +
    //                  dropped_after_expiry + dropped_before_cutoff.
    scope.count("corpus_certs", stats.corpus_size);
    scope.count("matched", stats.matched);
    scope.count("dropped_before_valid", stats.dropped_before_valid);
    scope.count("dropped_after_expiry", stats.dropped_after_expiry);
    scope.count("dropped_before_cutoff", stats.dropped_before_cutoff);
    scope.count("kept", stats.kept);
    scope.count("stale_key_compromise", result.key_compromise.size());
  }
  return result;
}

bool registrant_change_hits(const x509::Certificate& cert,
                            util::Date creation_date) {
  // notBefore < creationDate < notAfter (strict, per §4.2).
  return cert.not_before() < creation_date && creation_date < cert.not_after();
}

StaleCertificate make_registrant_stale(std::size_t corpus_index,
                                       const whois::NewRegistration& event,
                                       const x509::Certificate& cert) {
  StaleCertificate stale;
  stale.corpus_index = corpus_index;
  stale.cls = StaleClass::kRegistrantChange;
  stale.event_date = event.creation_date;
  stale.staleness =
      util::DateInterval{event.creation_date, cert.not_after()};
  stale.trigger_domain = event.domain;
  return stale;
}

std::vector<StaleCertificate> detect_registrant_change(
    const CertificateCorpus& corpus,
    const std::vector<whois::NewRegistration>& registrations,
    const RegistrantChangeOptions& options, obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "registrant_change");
  std::uint64_t rejected_no_previous = 0;
  std::uint64_t candidate_certs = 0;
  std::uint64_t rejected_outside_validity = 0;
  std::vector<StaleCertificate> out;
  for (const auto& event : registrations) {
    if (options.require_previous_observation && !event.previous_creation_date) {
      ++rejected_no_previous;
      continue;
    }
    for (const std::size_t index : corpus.by_e2ld(event.domain)) {
      const auto& cert = corpus.at(index);
      ++candidate_certs;
      if (!registrant_change_hits(cert, event.creation_date)) {
        ++rejected_outside_validity;
        continue;
      }
      out.push_back(make_registrant_stale(index, event, cert));
    }
  }
  if (scope.enabled()) {
    // Funnel identity: candidate_certs == stale_found +
    //                  rejected_outside_validity.
    scope.count("events", registrations.size());
    scope.count("rejected_no_previous_observation", rejected_no_previous);
    scope.count("candidate_certs", candidate_certs);
    scope.count("rejected_outside_validity", rejected_outside_validity);
    scope.count("stale_found", out.size());
  }
  return out;
}

std::vector<DepartureEvent> departures_between(const dns::DailySnapshot& prev,
                                               const dns::DailySnapshot& curr,
                                               const ManagedTlsOptions& options) {
  std::vector<DepartureEvent> events;
  auto delegated = [&](const dns::DomainRecords& records) {
    return std::any_of(options.delegation_patterns.begin(),
                       options.delegation_patterns.end(),
                       [&](const std::string& pattern) {
                         return records.delegates_to(pattern);
                       });
  };
  for (const auto& [domain, prev_records] : prev.records) {
    if (!delegated(prev_records)) continue;
    const dns::DomainRecords* curr_records = curr.find(domain);
    if (curr_records && delegated(*curr_records)) continue;
    events.push_back({domain, curr.date});
  }
  return events;
}

std::vector<DepartureEvent> detect_departures(const dns::SnapshotStore& snapshots,
                                              const ManagedTlsOptions& options) {
  std::vector<DepartureEvent> events;
  for (std::size_t day = 1; day < snapshots.days(); ++day) {
    auto pair_events =
        departures_between(snapshots.day(day - 1), snapshots.day(day), options);
    events.insert(events.end(), pair_events.begin(), pair_events.end());
  }
  return events;
}

DepartureJoinOutcome classify_departure_match(const x509::Certificate& cert,
                                              const DepartureEvent& event,
                                              const ManagedTlsOptions& options) {
  if (!cert.valid_at(event.date)) return DepartureJoinOutcome::kExpired;
  if (!cert.matches_domain(event.domain)) {
    return DepartureJoinOutcome::kNameMismatch;
  }
  const auto names = cert.dns_names();
  const bool managed = std::any_of(names.begin(), names.end(), [&](const auto& n) {
    return util::wildcard_match(options.managed_san_pattern, n);
  });
  return managed ? DepartureJoinOutcome::kKept : DepartureJoinOutcome::kUnmanaged;
}

StaleCertificate make_departure_stale(std::size_t corpus_index,
                                      const DepartureEvent& event,
                                      const x509::Certificate& cert) {
  StaleCertificate stale;
  stale.corpus_index = corpus_index;
  stale.cls = StaleClass::kManagedTlsDeparture;
  stale.event_date = event.date;
  stale.staleness = util::DateInterval{event.date, cert.not_after()};
  stale.trigger_domain = dns::e2ld(event.domain).value_or(event.domain);
  return stale;
}

std::vector<StaleCertificate> detect_managed_tls_departure(
    const CertificateCorpus& corpus, const dns::SnapshotStore& snapshots,
    const ManagedTlsOptions& options, obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "managed_departure");
  const std::vector<DepartureEvent> departures =
      detect_departures(snapshots, options);

  std::uint64_t candidate_certs = 0;
  std::uint64_t rejected_expired = 0;
  std::uint64_t rejected_name_mismatch = 0;
  std::uint64_t rejected_unmanaged = 0;
  std::uint64_t rejected_duplicate = 0;
  std::vector<StaleCertificate> out;
  std::set<std::pair<std::size_t, std::string>> reported;  // (cert, domain) dedup
  for (const auto& event : departures) {
    const auto e2 = dns::e2ld(event.domain);
    for (const std::size_t index : corpus.by_e2ld(e2.value_or(event.domain))) {
      const auto& cert = corpus.at(index);
      ++candidate_certs;
      switch (classify_departure_match(cert, event, options)) {
        case DepartureJoinOutcome::kExpired:
          ++rejected_expired;
          continue;
        case DepartureJoinOutcome::kNameMismatch:
          ++rejected_name_mismatch;
          continue;
        case DepartureJoinOutcome::kUnmanaged:
          ++rejected_unmanaged;
          continue;
        case DepartureJoinOutcome::kKept:
          break;
      }
      if (!reported.insert({index, event.domain}).second) {
        ++rejected_duplicate;
        continue;
      }
      out.push_back(make_departure_stale(index, event, cert));
    }
  }
  if (scope.enabled()) {
    // Funnel identity: candidate_certs == stale_found + every rejected_*.
    scope.count("departure_events", departures.size());
    scope.count("candidate_certs", candidate_certs);
    scope.count("rejected_expired", rejected_expired);
    scope.count("rejected_name_mismatch", rejected_name_mismatch);
    scope.count("rejected_unmanaged", rejected_unmanaged);
    scope.count("rejected_duplicate", rejected_duplicate);
    scope.count("stale_found", out.size());
  }
  return out;
}

std::vector<KeyRotationStale> detect_key_rotation(const CertificateCorpus& corpus) {
  std::vector<KeyRotationStale> out;
  for (const auto& e2ld : corpus.e2lds()) {
    std::vector<std::size_t> indices = corpus.by_e2ld(e2ld);
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return corpus.at(a).not_before() < corpus.at(b).not_before();
    });
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto& old_cert = corpus.at(indices[i]);
      // Earliest later certificate with a different key, overlapping
      // validity, sharing at least one name.
      for (std::size_t j = i + 1; j < indices.size(); ++j) {
        const auto& new_cert = corpus.at(indices[j]);
        if (new_cert.not_before() <= old_cert.not_before()) continue;
        if (new_cert.not_before() >= old_cert.not_after()) break;  // sorted
        if (new_cert.subject_key() == old_cert.subject_key()) continue;
        const auto old_names = old_cert.dns_names();
        const bool shares_name =
            std::any_of(old_names.begin(), old_names.end(), [&](const auto& n) {
              return new_cert.matches_domain(strip_wildcard(n));
            });
        if (!shares_name) continue;

        KeyRotationStale stale;
        stale.corpus_index = indices[i];
        stale.successor_index = indices[j];
        stale.rotation_date = new_cert.not_before();
        stale.staleness =
            util::DateInterval{new_cert.not_before(), old_cert.not_after()};
        stale.e2ld = e2ld;
        out.push_back(std::move(stale));
        break;  // one rotation record per superseded certificate
      }
    }
  }
  return out;
}

}  // namespace stalecert::core
