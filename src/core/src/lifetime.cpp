#include "stalecert/core/lifetime.hpp"

#include <algorithm>

namespace stalecert::core {

double CapResult::cert_reduction() const {
  if (original_count == 0) return 0.0;
  return 1.0 - static_cast<double>(surviving_count) /
                   static_cast<double>(original_count);
}

double CapResult::staleness_days_reduction() const {
  if (original_staleness_days <= 0.0) return 0.0;
  return 1.0 - capped_staleness_days / original_staleness_days;
}

CapResult simulate_cap(const CertificateCorpus& corpus,
                       const std::vector<StaleCertificate>& stale,
                       std::int64_t cap_days) {
  CapResult result;
  result.cap_days = cap_days;
  result.original_count = stale.size();
  for (const auto& record : stale) {
    const auto& cert = corpus.at(record.corpus_index);
    result.original_staleness_days += static_cast<double>(record.staleness_days());

    const util::DateInterval capped = cert.validity().clamp_duration(cap_days);
    if (record.event_date >= capped.end()) continue;  // no longer stale
    ++result.surviving_count;
    const util::Date begin = std::max(record.event_date, capped.begin());
    result.capped_staleness_days += static_cast<double>(capped.end() - begin);
  }
  return result;
}

std::vector<CapResult> simulate_caps(const CertificateCorpus& corpus,
                                     const std::vector<StaleCertificate>& stale,
                                     const std::vector<std::int64_t>& caps) {
  std::vector<CapResult> out;
  out.reserve(caps.size());
  for (const auto cap : caps) out.push_back(simulate_cap(corpus, stale, cap));
  return out;
}

std::vector<SurvivalPoint> survival_curve(const CertificateCorpus& corpus,
                                          const std::vector<StaleCertificate>& stale,
                                          const std::vector<std::int64_t>& days) {
  std::vector<double> offsets;
  offsets.reserve(stale.size());
  for (const auto& record : stale) {
    const auto& cert = corpus.at(record.corpus_index);
    offsets.push_back(static_cast<double>(record.event_date - cert.not_before()));
  }
  std::sort(offsets.begin(), offsets.end());

  std::vector<SurvivalPoint> out;
  out.reserve(days.size());
  for (const auto n : days) {
    const auto it = std::upper_bound(offsets.begin(), offsets.end(),
                                     static_cast<double>(n));
    const double cdf = offsets.empty()
                           ? 0.0
                           : static_cast<double>(std::distance(offsets.begin(), it)) /
                                 static_cast<double>(offsets.size());
    out.push_back({n, 1.0 - cdf});
  }
  return out;
}

double elimination_upper_bound(const CertificateCorpus& corpus,
                               const std::vector<StaleCertificate>& stale,
                               std::int64_t cap_days) {
  if (stale.empty()) return 0.0;
  std::uint64_t eliminated = 0;
  for (const auto& record : stale) {
    const auto& cert = corpus.at(record.corpus_index);
    if (record.event_date - cert.not_before() >= cap_days) ++eliminated;
  }
  return static_cast<double>(eliminated) / static_cast<double>(stale.size());
}

}  // namespace stalecert::core
