#include "stalecert/core/report.hpp"

#include <sstream>

#include "stalecert/core/lifetime.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::core {
namespace {

void render_class_section(std::ostringstream& os, const PipelineResult& result,
                          StaleClass cls, const ReportOptions& options) {
  const auto& stale = result.of(cls);
  StalenessAnalyzer analyzer(result.corpus, stale);

  os << "### " << to_string(cls) << "\n\n";
  os << "* stale certificates: **" << stale.size() << "**\n";
  os << "* affected e2LDs: **" << analyzer.affected_e2lds().size() << "**\n";
  if (stale.empty()) {
    os << "\n_No detections._\n\n";
    return;
  }
  const auto dist = analyzer.staleness_distribution();
  os << "* staleness days (p25 / median / p75 / max): " << dist.quantile(0.25)
     << " / " << dist.median() << " / " << dist.quantile(0.75) << " / "
     << dist.max() << "\n";
  os << "* total staleness-days: " << analyzer.total_staleness_days() << "\n\n";

  os << "| survival after n days |";
  for (const auto n : options.survival_days) os << " " << n << "d |";
  os << "\n|---|";
  for (std::size_t i = 0; i < options.survival_days.size(); ++i) os << "---|";
  os << "\n| fraction not yet stale |";
  for (const auto& point :
       survival_curve(result.corpus, stale, options.survival_days)) {
    os << " " << util::percent(point.surviving_fraction, 1) << " |";
  }
  os << "\n\n";

  os << "| max lifetime | certs still stale | staleness-days reduction |\n";
  os << "|---|---|---|\n";
  for (const auto& cap : simulate_caps(result.corpus, stale, options.caps)) {
    os << "| " << cap.cap_days << "d | " << cap.surviving_count << " / "
       << cap.original_count << " | "
       << util::percent(cap.staleness_days_reduction(), 1) << " |\n";
  }
  os << "\n";
}

}  // namespace

std::string render_markdown_report(const PipelineResult& result,
                                   const ReportOptions& options) {
  std::ostringstream os;
  os << "# " << options.title << "\n\n";

  os << "## Corpus\n\n";
  os << "* unique certificates: **" << result.corpus.size() << "** (from "
     << result.collect_stats.raw_entries << " CT entries, "
     << result.collect_stats.dropped_anomalous_fqdns
     << " anomalous FQDNs dropped)\n";
  os << "* distinct e2LDs: " << result.corpus.e2lds().size() << "\n\n";

  os << "## Revocation join\n\n";
  const auto& join = result.revocations.join_stats;
  os << "* matched: " << join.matched << ", kept: " << join.kept
     << " (dropped: " << join.dropped_before_valid << " before-valid, "
     << join.dropped_after_expiry << " after-expiry, "
     << join.dropped_before_cutoff << " before-cutoff)\n\n";

  os << "## Third-party stale certificates\n\n";
  for (const auto cls :
       {StaleClass::kKeyCompromise, StaleClass::kRegistrantChange,
        StaleClass::kManagedTlsDeparture}) {
    render_class_section(os, result, cls, options);
  }

  const auto all = result.all_third_party();
  os << "## Combined what-if\n\n";
  os << "All classes together: **" << all.size() << "** stale certificates.\n\n";
  os << "| max lifetime | staleness-days reduction |\n|---|---|\n";
  for (const auto& cap : simulate_caps(result.corpus, all, options.caps)) {
    os << "| " << cap.cap_days << "d | "
       << util::percent(cap.staleness_days_reduction(), 1) << " |\n";
  }
  os << "\n";
  return os.str();
}

}  // namespace stalecert::core
