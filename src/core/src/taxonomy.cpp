#include "stalecert/core/taxonomy.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::core {

std::string to_string(InfoCategory category) {
  switch (category) {
    case InfoCategory::kSubscriberAuthentication: return "Subscriber authentication";
    case InfoCategory::kKeyAuthorization: return "Key authorization";
    case InfoCategory::kIssuerInformation: return "Issuer information";
    case InfoCategory::kCertificateMetadata: return "Certificate metadata";
  }
  return "?";
}

std::vector<std::string> related_fields(InfoCategory category) {
  switch (category) {
    case InfoCategory::kSubscriberAuthentication:
      return {"Subject Name", "SAN", "Subject Public Key", "Subject Key ID"};
    case InfoCategory::kKeyAuthorization:
      return {"Basic Constraints", "Key Usage", "Extended Key Usage"};
    case InfoCategory::kIssuerInformation:
      return {"Issuer Name", "Authority Key ID", "Signature",
              "CRL Distribution Points", "Authority Info Access",
              "Certificate Policy"};
    case InfoCategory::kCertificateMetadata:
      return {"Serial #", "Precert Poison", "Signed Cert Timestamps"};
  }
  return {};
}

std::string to_string(InvalidationEvent event) {
  switch (event) {
    case InvalidationEvent::kDomainOwnershipChange: return "domain ownership change";
    case InvalidationEvent::kDomainUseChange: return "domain use change";
    case InvalidationEvent::kKeyOwnershipChange: return "key ownership change";
    case InvalidationEvent::kKeyUseChange: return "key use change";
    case InvalidationEvent::kManagedTlsDeparture: return "managed TLS departure";
    case InvalidationEvent::kKeyAuthorizationChange: return "key authorization change";
    case InvalidationEvent::kRevocationInfoChange: return "revocation info change";
  }
  return "?";
}

SecurityImplication classify(InvalidationEvent event) {
  switch (event) {
    case InvalidationEvent::kDomainOwnershipChange:
      return {ControllingParty::kThirdParty, true,
              "prior registrant can impersonate the domain"};
    case InvalidationEvent::kDomainUseChange:
      return {ControllingParty::kFirstParty, false, "minimal"};
    case InvalidationEvent::kKeyOwnershipChange:
      return {ControllingParty::kThirdParty, true,
              "key holder can impersonate all covered domains"};
    case InvalidationEvent::kKeyUseChange:
      return {ControllingParty::kFirstParty, false, "minimal (rotation/disuse)"};
    case InvalidationEvent::kManagedTlsDeparture:
      return {ControllingParty::kThirdParty, true,
              "prior CDN / host retains valid keys for departed customer"};
    case InvalidationEvent::kKeyAuthorizationChange:
      return {ControllingParty::kFirstParty, false,
              "over-permissioned authentication / signing"};
    case InvalidationEvent::kRevocationInfoChange:
      return {ControllingParty::kFirstParty, false,
              "minimal; revocation already unreliable"};
  }
  throw LogicError("classify: unknown event");
}

InfoCategory category_of(InvalidationEvent event) {
  switch (event) {
    case InvalidationEvent::kDomainOwnershipChange:
    case InvalidationEvent::kDomainUseChange:
    case InvalidationEvent::kKeyOwnershipChange:
    case InvalidationEvent::kKeyUseChange:
    case InvalidationEvent::kManagedTlsDeparture:
      return InfoCategory::kSubscriberAuthentication;
    case InvalidationEvent::kKeyAuthorizationChange:
      return InfoCategory::kKeyAuthorization;
    case InvalidationEvent::kRevocationInfoChange:
      return InfoCategory::kIssuerInformation;
  }
  throw LogicError("category_of: unknown event");
}

std::string to_string(StaleClass cls) {
  switch (cls) {
    case StaleClass::kKeyCompromise: return "key compromise";
    case StaleClass::kRegistrantChange: return "domain registrant change";
    case StaleClass::kManagedTlsDeparture: return "managed TLS departure";
  }
  return "?";
}

InvalidationEvent event_of(StaleClass cls) {
  switch (cls) {
    case StaleClass::kKeyCompromise: return InvalidationEvent::kKeyOwnershipChange;
    case StaleClass::kRegistrantChange:
      return InvalidationEvent::kDomainOwnershipChange;
    case StaleClass::kManagedTlsDeparture:
      return InvalidationEvent::kManagedTlsDeparture;
  }
  throw LogicError("event_of: unknown class");
}

InvalidationEvent event_from_reason(revocation::ReasonCode reason) {
  using revocation::ReasonCode;
  switch (reason) {
    case ReasonCode::kKeyCompromise:
    case ReasonCode::kCaCompromise:
    case ReasonCode::kAaCompromise:
      return InvalidationEvent::kKeyOwnershipChange;
    case ReasonCode::kSuperseded:
      return InvalidationEvent::kKeyUseChange;
    case ReasonCode::kAffiliationChanged:
    case ReasonCode::kPrivilegeWithdrawn:
      return InvalidationEvent::kDomainOwnershipChange;
    case ReasonCode::kCessationOfOperation:
      // Ambiguous by design (see §3): conflates benign shutdown with
      // squatted/transferred domains. We default to the benign reading.
      return InvalidationEvent::kDomainUseChange;
    default:
      return InvalidationEvent::kKeyUseChange;
  }
}

}  // namespace stalecert::core
