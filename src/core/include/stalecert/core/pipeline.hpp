#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/detectors.hpp"
#include "stalecert/core/lifetime.hpp"
#include "stalecert/ct/logset.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::core {

/// Configuration for the end-to-end measurement pipeline (§4).
struct PipelineConfig {
  /// CT collection: precert dedup is always on; this is the anomalous-FQDN
  /// threshold (paper: 3000).
  std::uint64_t max_certs_per_fqdn = 3000;
  /// Revocation cutoff: drop revocations before this date (paper:
  /// 2021-10-01, 13 months before CRL collection start). nullopt = keep all.
  std::optional<util::Date> revocation_cutoff;
  /// Conservative registrant-change posture (paper default: true).
  bool require_previous_whois_observation = true;
  /// Managed-TLS provider identification.
  std::vector<std::string> delegation_patterns;
  std::string managed_san_pattern;
  /// Optional telemetry sink (e.g. obs::MetricsPipelineObserver). Every
  /// stage reports funnel counters and wall-clock through it; nullptr (the
  /// default) runs the pipeline unobserved with no behavioral difference.
  obs::PipelineObserver* observer = nullptr;
};

/// Everything the pipeline produces in one pass.
struct PipelineResult {
  CertificateCorpus corpus;
  ct::CollectStats collect_stats;
  RevocationAnalysisResult revocations;
  std::vector<StaleCertificate> registrant_change;
  std::vector<StaleCertificate> managed_departure;

  /// All third-party stale certificates (KC + registrant + managed).
  [[nodiscard]] std::vector<StaleCertificate> all_third_party() const;
  [[nodiscard]] const std::vector<StaleCertificate>& of(StaleClass cls) const;
};

/// Runs the full measurement pipeline: CT download + dedup + anomaly
/// filter, CRL join with outlier filters, WHOIS re-registration join, and
/// aDNS departure detection. This is the one-call public API a downstream
/// monitor would embed.
PipelineResult run_pipeline(const ct::LogSet& logs,
                            const revocation::RevocationStore& revocations,
                            const std::vector<whois::NewRegistration>& registrations,
                            const dns::SnapshotStore& adns,
                            const PipelineConfig& config);

}  // namespace stalecert::core
