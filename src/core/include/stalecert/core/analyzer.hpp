#pragma once

#include <map>
#include <string>
#include <vector>

#include "stalecert/core/detectors.hpp"
#include "stalecert/util/date.hpp"
#include "stalecert/util/stats.hpp"

namespace stalecert::core {

/// Aggregate counts for one stale class over a measurement window —
/// one row of Table 4.
struct StaleSummary {
  std::uint64_t stale_certs = 0;
  std::uint64_t stale_fqdns = 0;
  std::uint64_t stale_e2lds = 0;
  std::int64_t window_days = 0;

  [[nodiscard]] double daily_certs() const;
  [[nodiscard]] double daily_fqdns() const;
  [[nodiscard]] double daily_e2lds() const;
};

/// Analysis over a set of detected stale certificates, referencing the
/// corpus they were detected in.
class StalenessAnalyzer {
 public:
  StalenessAnalyzer(const CertificateCorpus& corpus,
                    std::vector<StaleCertificate> stale);

  [[nodiscard]] const std::vector<StaleCertificate>& stale() const { return stale_; }
  [[nodiscard]] std::size_t count() const { return stale_.size(); }

  /// Table 4 row over [first, last] inclusive.
  [[nodiscard]] StaleSummary summarize(util::Date first, util::Date last) const;

  /// Monthly count of stale certificates keyed by event month (Figures 4
  /// and 5a).
  [[nodiscard]] std::map<util::YearMonth, std::uint64_t> monthly_counts() const;
  /// Monthly count of distinct affected e2LDs (Figure 5a's second series).
  [[nodiscard]] std::map<util::YearMonth, std::uint64_t> monthly_e2lds() const;
  /// Monthly counts split by an attribution label (issuer CN for Figure
  /// 5b; issuing CA organization for Figure 4).
  [[nodiscard]] std::map<util::YearMonth, util::LabelCounter> monthly_by_label(
      bool use_organization) const;

  /// Distribution of staleness periods in days (Figure 6 / Figure 7).
  [[nodiscard]] util::EmpiricalDistribution staleness_distribution() const;
  /// Distribution restricted to events in one calendar year (Figure 7).
  [[nodiscard]] util::EmpiricalDistribution staleness_distribution_for_year(
      int year) const;

  /// Distribution of days from issuance (notBefore) to the invalidation
  /// event — the survival analysis input for Figure 8.
  [[nodiscard]] util::EmpiricalDistribution time_to_invalidation() const;

  /// Distinct affected e2LDs across the whole set.
  [[nodiscard]] std::vector<std::string> affected_e2lds() const;
  /// Total staleness-days across the set (Figure 9's denominator).
  [[nodiscard]] double total_staleness_days() const;

 private:
  /// FQDNs a stale record puts at risk: for registrant change and managed
  /// TLS, the certificate names under the trigger e2LD; for key
  /// compromise, every name on the certificate.
  [[nodiscard]] std::vector<std::string> at_risk_fqdns(
      const StaleCertificate& record) const;

  const CertificateCorpus* corpus_;
  std::vector<StaleCertificate> stale_;
};

}  // namespace stalecert::core
