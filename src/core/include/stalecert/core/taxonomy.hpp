#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stalecert/revocation/reasons.hpp"

namespace stalecert::core {

/// Table 1: the four roles certificate information plays.
enum class InfoCategory : std::uint8_t {
  kSubscriberAuthentication,  // Subject Name, SAN, SPKI, Subject Key ID
  kKeyAuthorization,          // Basic Constraints, Key Usage, EKU
  kIssuerInformation,         // Issuer Name, AKI, Signature, CRL DP, AIA, Policy
  kCertificateMetadata,       // Serial, Precert Poison, SCTs
};

std::string to_string(InfoCategory category);
/// The certificate fields associated with a category (Table 1 column 3).
std::vector<std::string> related_fields(InfoCategory category);

/// Table 2: certificate invalidation events.
enum class InvalidationEvent : std::uint8_t {
  kDomainOwnershipChange,   // registrant change
  kDomainUseChange,         // domain expiration, no new owner
  kKeyOwnershipChange,      // key compromise
  kKeyUseChange,            // key rotation / disuse
  kManagedTlsDeparture,     // key disuse where a third party holds the key
  kKeyAuthorizationChange,  // key scope reduction
  kRevocationInfoChange,    // CA infrastructure change
};

std::string to_string(InvalidationEvent event);

/// Which party ends up controlling the stale certificate's key.
enum class ControllingParty : std::uint8_t { kFirstParty, kThirdParty };

/// Security classification of an invalidation event (Table 2 column 4).
struct SecurityImplication {
  ControllingParty party = ControllingParty::kFirstParty;
  bool enables_impersonation = false;  // TLS domain impersonation possible
  std::string description;
};

/// Maps an invalidation event to its Table 2 classification.
SecurityImplication classify(InvalidationEvent event);
/// The information category an invalidation event belongs to.
InfoCategory category_of(InvalidationEvent event);

/// The three third-party stale certificate classes the paper measures.
/// When adding a value, bump kStaleClassCount and extend kAllStaleClasses —
/// exhaustive switches static_assert against them, so omissions fail at
/// compile time instead of throwing at runtime.
enum class StaleClass : std::uint8_t {
  kKeyCompromise,
  kRegistrantChange,
  kManagedTlsDeparture,
};

inline constexpr std::size_t kStaleClassCount = 3;
inline constexpr std::array<StaleClass, kStaleClassCount> kAllStaleClasses = {
    StaleClass::kKeyCompromise,
    StaleClass::kRegistrantChange,
    StaleClass::kManagedTlsDeparture,
};

std::string to_string(StaleClass cls);
InvalidationEvent event_of(StaleClass cls);

/// Best-effort mapping of an RFC 5280 revocation reason onto the taxonomy.
/// Demonstrates the paper's point: the mapping is lossy and ambiguous
/// (e.g. cessationOfOperation conflates benign shutdown with squatted
/// domains), so several reasons map to kDomainUseChange by default.
InvalidationEvent event_from_reason(revocation::ReasonCode reason);

}  // namespace stalecert::core
