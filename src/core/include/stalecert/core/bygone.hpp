#pragma once

#include <string>
#include <vector>

#include "stalecert/core/corpus.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::core {

/// BygoneSSL-style defender check (Foster & Ayrey, DEF CON'18 — the work
/// this paper generalizes): when you acquire a domain, query CT for
/// certificates that were issued BEFORE your acquisition and are still
/// valid AFTER it. Whoever requested them (the prior owner, their CDN)
/// may still hold the keys and can impersonate you until expiry.
struct BygoneCertificate {
  std::size_t corpus_index = 0;
  /// Days the certificate remains valid past the acquisition date.
  std::int64_t residual_days = 0;
  /// Names on the certificate under the acquired domain.
  std::vector<std::string> covered_names;
};

struct BygoneReport {
  std::string domain;
  util::Date acquisition_date;
  std::vector<BygoneCertificate> certificates;

  [[nodiscard]] bool clean() const { return certificates.empty(); }
  /// Latest expiry among bygone certificates — the date after which the
  /// new owner is safe without further action.
  [[nodiscard]] util::Date safe_after() const;
};

/// Scans the corpus for bygone certificates of `domain` (an e2LD) acquired
/// on `acquisition_date`. Results are sorted by descending residual days.
BygoneReport check_bygone(const CertificateCorpus& corpus, const std::string& domain,
                          util::Date acquisition_date);

}  // namespace stalecert::core
