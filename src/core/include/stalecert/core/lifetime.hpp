#pragma once

#include <cstdint>
#include <vector>

#include "stalecert/core/analyzer.hpp"
#include "stalecert/core/detectors.hpp"

namespace stalecert::core {

/// Result of replaying a stale-certificate set under a hypothetical maximum
/// lifetime of `cap_days` (§6 / Figure 9): certificates longer than the cap
/// have their expiration pulled in to notBefore + cap; shorter certificates
/// are untouched. A certificate stops being stale when its invalidation
/// event now falls at or after the (new) expiry.
struct CapResult {
  std::int64_t cap_days = 0;
  std::uint64_t original_count = 0;
  std::uint64_t surviving_count = 0;       // still stale under the cap
  double original_staleness_days = 0.0;
  double capped_staleness_days = 0.0;

  /// Fraction of stale certificates eliminated outright.
  [[nodiscard]] double cert_reduction() const;
  /// Fraction of total staleness-days eliminated (the Figure 9 metric).
  [[nodiscard]] double staleness_days_reduction() const;
};

/// Simulates one lifetime cap over a detected stale set.
CapResult simulate_cap(const CertificateCorpus& corpus,
                       const std::vector<StaleCertificate>& stale,
                       std::int64_t cap_days);

/// Sweeps several caps (the paper uses 45, 90, 215 and the status-quo 398).
std::vector<CapResult> simulate_caps(const CertificateCorpus& corpus,
                                     const std::vector<StaleCertificate>& stale,
                                     const std::vector<std::int64_t>& caps);

/// One point of the Figure 8 survival curve.
struct SurvivalPoint {
  std::int64_t days = 0;
  double surviving_fraction = 0.0;  // P(time-to-invalidation > days)
};

/// Survival analysis over time-from-issuance-to-invalidation: the
/// proportion of (eventually stale) certificates that had not yet become
/// stale n days after issuance. Under a max lifetime of n days, `1 -
/// surviving_fraction(n)`... inverted: the fraction with event offset > n
/// could be eliminated entirely (upper bound; assumes no renewal).
std::vector<SurvivalPoint> survival_curve(const CertificateCorpus& corpus,
                                          const std::vector<StaleCertificate>& stale,
                                          const std::vector<std::int64_t>& days);

/// Upper-bound fraction of stale certificates eliminated by a max lifetime
/// of n days: P(time-to-invalidation >= n).
double elimination_upper_bound(const CertificateCorpus& corpus,
                               const std::vector<StaleCertificate>& stale,
                               std::int64_t cap_days);

}  // namespace stalecert::core
