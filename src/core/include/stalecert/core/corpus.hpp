#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stalecert/x509/certificate.hpp"

namespace stalecert::core {

/// An indexed certificate corpus (the deduplicated CT download). Builds
/// e2LD and FQDN inverted indexes once so the detectors' joins are O(1)
/// per event instead of scanning 5B certificates per lookup.
class CertificateCorpus {
 public:
  CertificateCorpus() = default;
  explicit CertificateCorpus(std::vector<x509::Certificate> certificates);
  /// Extension build: copies `base` (certificates AND both inverted
  /// indexes) and appends `appended`, indexing only the new range. The
  /// result is identical to rebuilding from the concatenated certificate
  /// list — the incremental-ingest path (stalecert::feed) relies on that.
  CertificateCorpus(const CertificateCorpus& base,
                    std::vector<x509::Certificate> appended);

  [[nodiscard]] std::size_t size() const { return certificates_.size(); }
  [[nodiscard]] const std::vector<x509::Certificate>& certificates() const {
    return certificates_;
  }
  [[nodiscard]] const x509::Certificate& at(std::size_t index) const;

  /// Indices of certificates containing any name under the given e2LD.
  [[nodiscard]] std::vector<std::size_t> by_e2ld(const std::string& e2ld) const;
  /// Indices of certificates containing the exact FQDN.
  [[nodiscard]] std::vector<std::size_t> by_fqdn(const std::string& fqdn) const;

  /// All distinct e2LDs present in the corpus.
  [[nodiscard]] std::vector<std::string> e2lds() const;

  /// Temporal-overlap statistics for one e2LD's certificates — §5.2's
  /// cruise-liner observation: "hundreds of temporally-overlapping
  /// certificates per Cloudflare customer domain".
  struct OverlapStats {
    std::size_t certificates = 0;
    /// Maximum number of certificates simultaneously valid for the e2LD.
    std::size_t max_concurrent = 0;
    /// The day the maximum occurs (first such day).
    util::Date peak_date;
  };
  [[nodiscard]] OverlapStats overlap_stats(const std::string& e2ld) const;

 private:
  /// Indexes certificates_[first..) into both inverted indexes.
  void index_range(std::size_t first);

  std::vector<x509::Certificate> certificates_;
  std::unordered_map<std::string, std::vector<std::size_t>> e2ld_index_;
  std::unordered_map<std::string, std::vector<std::size_t>> fqdn_index_;
};

/// Strips a single leading wildcard label ("*.foo.com" -> "foo.com") for
/// FQDN accounting.
std::string strip_wildcard(const std::string& name);

}  // namespace stalecert::core
