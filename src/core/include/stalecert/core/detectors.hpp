#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stalecert/core/corpus.hpp"
#include "stalecert/core/taxonomy.hpp"
#include "stalecert/dns/scan.hpp"
#include "stalecert/revocation/join.hpp"
#include "stalecert/util/interval.hpp"
#include "stalecert/whois/database.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::core {

/// A detected third-party stale certificate: a still-valid certificate
/// whose key a third party controls after an invalidation event.
struct StaleCertificate {
  std::size_t corpus_index = 0;  // into the detecting corpus
  StaleClass cls = StaleClass::kKeyCompromise;
  util::Date event_date;            // when the invalidation occurred
  util::DateInterval staleness;     // [event, notAfter)
  std::string trigger_domain;       // e2LD whose change triggered detection
  /// For key compromise: the reported revocation reason.
  std::optional<revocation::ReasonCode> reason;

  [[nodiscard]] std::int64_t staleness_days() const { return staleness.days(); }
};

/// First e2LD found among a certificate's names (the attribution label
/// every detector stamps into trigger_domain for revocation-class records).
std::string primary_e2ld(const x509::Certificate& cert);

/// ---------- Key compromise via revocation (§4.1 / §5.1) ----------

struct RevocationAnalysisResult {
  std::vector<StaleCertificate> all_revoked;      // Table 4 "Revoked: all"
  std::vector<StaleCertificate> key_compromise;   // Table 4 "Revoked: key compromise"
  revocation::JoinStats join_stats;
};

/// Joins a revocation store against the corpus, applies the paper's
/// outlier filters, and splits out the key-compromise subset. Staleness is
/// conservatively measured from the revocation timestamp (the paper
/// assumes revocation is issued as soon as the event occurs).
/// A non-null `observer` receives the join funnel (matched vs. each
/// JoinFilters drop reason) under the stage name "revocation_join".
RevocationAnalysisResult analyze_revocations(
    const CertificateCorpus& corpus, const revocation::RevocationStore& store,
    const revocation::JoinFilters& filters,
    obs::PipelineObserver* observer = nullptr);

/// Why one (certificate, revocation observation) pair did or did not
/// produce a stale record — the single source of truth shared by the
/// full-corpus join above and the incremental join in stalecert::feed.
enum class RevocationJoinOutcome : std::uint8_t {
  kKept,
  kBeforeValid,   // revoked before notBefore (outlier filter)
  kAfterExpiry,   // revoked at/after notAfter (nothing left to be stale)
  kBeforeCutoff,  // earlier than the study's min_revocation_date
};

RevocationJoinOutcome classify_revocation_match(
    const x509::Certificate& cert,
    const revocation::RevocationStore::Observation& observation,
    const revocation::JoinFilters& filters);

/// The kKeyCompromise-class record for a kept match.
StaleCertificate make_revoked_stale(
    std::size_t corpus_index, const x509::Certificate& cert,
    const revocation::RevocationStore::Observation& observation);

/// ---------- Domain registrant change (§4.2 / §5.2) ----------

struct RegistrantChangeOptions {
  /// Only count re-registrations (a previous creation date was observed):
  /// the paper's conservative precision-over-recall posture. Disabling
  /// this counts first sightings too (an ablation).
  bool require_previous_observation = true;
};

/// For each WHOIS re-registration, finds certificates for that e2LD whose
/// validity spans the new registry creation date:
/// notBefore < creationDate < notAfter.
/// A non-null `observer` receives the candidate funnel (events rejected by
/// the conservative posture, certificates outside the validity window)
/// under the stage name "registrant_change".
std::vector<StaleCertificate> detect_registrant_change(
    const CertificateCorpus& corpus,
    const std::vector<whois::NewRegistration>& registrations,
    const RegistrantChangeOptions& options = {},
    obs::PipelineObserver* observer = nullptr);

/// The §4.2 window predicate: notBefore < creationDate < notAfter (strict).
bool registrant_change_hits(const x509::Certificate& cert,
                            util::Date creation_date);

/// The kRegistrantChange-class record for a hit.
StaleCertificate make_registrant_stale(std::size_t corpus_index,
                                       const whois::NewRegistration& event,
                                       const x509::Certificate& cert);

/// ---------- Managed TLS departure (§4.3 / §5.3) ----------

struct ManagedTlsOptions {
  /// Delegation patterns that identify the provider in NS/CNAME records,
  /// e.g. {"*.ns.cloudflare.com", "*.cdn.cloudflare.com"}.
  std::vector<std::string> delegation_patterns;
  /// SAN pattern identifying the provider's managed certificates,
  /// e.g. "sni*.cloudflaressl.com".
  std::string managed_san_pattern;
};

/// A day-over-day delegation disappearance.
struct DepartureEvent {
  std::string domain;
  util::Date date;  // the first day the delegation was absent
};

/// Scans consecutive snapshots for domains whose provider delegation was
/// present one day and absent the next.
std::vector<DepartureEvent> detect_departures(const dns::SnapshotStore& snapshots,
                                              const ManagedTlsOptions& options);

/// Departures between ONE consecutive snapshot pair — the unit
/// detect_departures loops over, exposed so stalecert::feed can diff a
/// delta day against the last archived day without holding both stores.
std::vector<DepartureEvent> departures_between(const dns::DailySnapshot& prev,
                                               const dns::DailySnapshot& curr,
                                               const ManagedTlsOptions& options);

/// Why one (certificate, departure event) pair did or did not produce a
/// stale record. The stateful (cert, domain) dedup stays with the caller.
enum class DepartureJoinOutcome : std::uint8_t {
  kKept,
  kExpired,       // not valid on the departure date
  kNameMismatch,  // certificate does not cover the departed FQDN
  kUnmanaged,     // no provider SAN marker: not a managed certificate
};

DepartureJoinOutcome classify_departure_match(const x509::Certificate& cert,
                                              const DepartureEvent& event,
                                              const ManagedTlsOptions& options);

/// The kManagedTlsDeparture-class record for a kept match.
StaleCertificate make_departure_stale(std::size_t corpus_index,
                                      const DepartureEvent& event,
                                      const x509::Certificate& cert);

/// Joins departure events against the corpus: managed certificates
/// (matching the SAN pattern) covering the departed domain and valid on
/// the departure date.
/// A non-null `observer` receives the candidate funnel (expired, name
/// mismatch, unmanaged, duplicate) under the stage name
/// "managed_departure".
std::vector<StaleCertificate> detect_managed_tls_departure(
    const CertificateCorpus& corpus, const dns::SnapshotStore& snapshots,
    const ManagedTlsOptions& options,
    obs::PipelineObserver* observer = nullptr);

/// ---------- First-party staleness: key rotation (§3.1, Table 2) ----------

/// A superseded certificate: a newer certificate for the same name(s) with
/// a DIFFERENT key was issued while this one was still valid. First-party
/// (the owner holds both keys), minimal security impact — but exactly the
/// population that "superseded" revocations under-report.
struct KeyRotationStale {
  std::size_t corpus_index = 0;     // the superseded certificate
  std::size_t successor_index = 0;  // the replacement carrying a new key
  util::Date rotation_date;         // successor's notBefore
  util::DateInterval staleness;     // [rotation, superseded notAfter)
  std::string e2ld;

  [[nodiscard]] std::int64_t staleness_days() const { return staleness.days(); }
};

/// Scans the corpus for key rotations. Renewals that KEEP the key are not
/// invalidation events and are not reported.
std::vector<KeyRotationStale> detect_key_rotation(const CertificateCorpus& corpus);

}  // namespace stalecert::core
