#pragma once

#include <string>

#include "stalecert/core/pipeline.hpp"

namespace stalecert::core {

/// Options for rendering a measurement report.
struct ReportOptions {
  std::string title = "Stale TLS certificate survey";
  /// Lifetime caps to include in the what-if section.
  std::vector<std::int64_t> caps = {45, 90, 215};
  /// Survival checkpoints.
  std::vector<std::int64_t> survival_days = {30, 90, 215, 398};
};

/// Renders a PipelineResult as a self-contained Markdown report: corpus
/// statistics, per-class detection counts, staleness distributions,
/// survival checkpoints and the lifetime-cap what-if — the artifact a
/// monitoring deployment would publish from each pipeline run.
std::string render_markdown_report(const PipelineResult& result,
                                   const ReportOptions& options = {});

}  // namespace stalecert::core
