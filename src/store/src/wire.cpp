#include "stalecert/store/wire.hpp"

#include <array>
#include <cstring>

namespace stalecert::store {

namespace {

/// Table-driven CRC32 (reflected 0xEDB88320). The table is computed once,
/// at first use, from the polynomial — no 1 KiB literal to mistype.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  crc = ~crc;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

// --- ByteSink -------------------------------------------------------------

void ByteSink::u32le(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteSink::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteSink::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteSink::str(std::string_view s) {
  varint(s.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void ByteSink::blob(std::span<const std::uint8_t> data) {
  varint(data.size());
  bytes(data);
}

// --- SpanSource -----------------------------------------------------------

void SpanSource::read(std::span<std::uint8_t> out) {
  if (out.size() > data_.size() - pos_) {
    throw ArchiveTruncatedError("read past end of buffer");
  }
  if (out.empty()) return;  // empty span's data() may be null; memcpy forbids it
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

// --- WireReader -----------------------------------------------------------

std::uint8_t WireReader::u8() {
  std::uint8_t b = 0;
  source_->read({&b, 1});
  return b;
}

std::uint32_t WireReader::u32le() {
  std::array<std::uint8_t, 4> b{};
  source_->read(b);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t WireReader::varint() {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    try {
      source_->read({&byte, 1});
    } catch (const ArchiveTruncatedError&) {
      throw ArchiveTruncatedError("source ended mid-varint");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      // The 10th byte may only carry the top bit of a 64-bit value.
      if (shift == 63 && byte > 1) {
        throw ArchiveCorruptError("varint overflows 64 bits");
      }
      return value;
    }
  }
  throw ArchiveCorruptError("varint longer than 10 bytes");
}

std::vector<std::uint8_t> WireReader::blob() {
  const std::uint64_t len = varint();
  if (len > source_->remaining()) {
    throw ArchiveTruncatedError("blob length " + std::to_string(len) +
                                " exceeds remaining " +
                                std::to_string(source_->remaining()) + " bytes");
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(len));
  source_->read(out);
  return out;
}

std::string WireReader::str() {
  const auto raw = blob();
  return std::string(raw.begin(), raw.end());
}

std::uint64_t WireReader::count(std::uint64_t min_record_bytes) {
  const std::uint64_t n = varint();
  if (min_record_bytes != 0 && n > source_->remaining() / min_record_bytes) {
    throw ArchiveCorruptError("record count " + std::to_string(n) +
                              " impossible for remaining " +
                              std::to_string(source_->remaining()) + " bytes");
  }
  return n;
}

}  // namespace stalecert::store
