#include <algorithm>
#include <array>
#include <cstring>

#include "stalecert/obs/observer.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::store {

namespace detail {

namespace {
constexpr std::size_t kChunkBytes = 64 * 1024;
}

FileSegmentSource::FileSegmentSource(const std::string& path,
                                     std::uint64_t offset, std::uint64_t length,
                                     std::uint32_t expected_crc,
                                     std::string segment_name)
    : file_(path, std::ios::binary),
      segment_name_(std::move(segment_name)),
      length_(length),
      expected_crc_(expected_crc) {
  if (!file_) throw ArchiveError("cannot reopen " + path);
  file_.seekg(static_cast<std::streamoff>(offset));
  if (!file_) {
    throw ArchiveTruncatedError("segment " + segment_name_ + " offset past EOF");
  }
}

void FileSegmentSource::refill() {
  const std::uint64_t buffered = buffer_end_ - buffer_pos_;
  const std::uint64_t file_read = consumed_ + buffered;
  const std::uint64_t want =
      std::min<std::uint64_t>(kChunkBytes, length_ - file_read);
  buffer_.resize(static_cast<std::size_t>(want));
  buffer_pos_ = 0;
  buffer_end_ = 0;
  file_.read(reinterpret_cast<char*>(buffer_.data()),
             static_cast<std::streamsize>(want));
  if (static_cast<std::uint64_t>(file_.gcount()) != want) {
    throw ArchiveTruncatedError("segment " + segment_name_ +
                                " ends before its declared length");
  }
  buffer_end_ = static_cast<std::size_t>(want);
  crc_ = crc32_update(crc_, std::span(buffer_.data(), buffer_end_));
}

void FileSegmentSource::read(std::span<std::uint8_t> out) {
  if (out.size() > remaining()) {
    throw ArchiveTruncatedError("segment " + segment_name_ + " read of " +
                                std::to_string(out.size()) + " bytes with " +
                                std::to_string(remaining()) + " remaining");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    if (buffer_pos_ == buffer_end_) refill();
    const std::size_t take =
        std::min(out.size() - done, buffer_end_ - buffer_pos_);
    std::memcpy(out.data() + done, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    consumed_ += take;
    done += take;
  }
}

void FileSegmentSource::verify() {
  if (verified_) return;
  if (remaining() != 0) {
    throw ArchiveCorruptError("segment " + segment_name_ + " has " +
                              std::to_string(remaining()) +
                              " undecoded trailing bytes");
  }
  if (crc_ != expected_crc_) {
    throw ArchiveCorruptError("segment " + segment_name_ + " CRC32 mismatch");
  }
  verified_ = true;
}

}  // namespace detail

namespace {

revocation::ReasonCode decode_reason(std::uint64_t raw) {
  switch (raw) {
    case 0: return revocation::ReasonCode::kUnspecified;
    case 1: return revocation::ReasonCode::kKeyCompromise;
    case 2: return revocation::ReasonCode::kCaCompromise;
    case 3: return revocation::ReasonCode::kAffiliationChanged;
    case 4: return revocation::ReasonCode::kSuperseded;
    case 5: return revocation::ReasonCode::kCessationOfOperation;
    case 6: return revocation::ReasonCode::kCertificateHold;
    case 8: return revocation::ReasonCode::kRemoveFromCrl;
    case 9: return revocation::ReasonCode::kPrivilegeWithdrawn;
    case 10: return revocation::ReasonCode::kAaCompromise;
    default:
      throw ArchiveCorruptError("unknown CRL reason code " + std::to_string(raw));
  }
}

bool decode_flag(WireReader& reader, const char* what) {
  const std::uint8_t flag = reader.u8();
  if (flag > 1) {
    throw ArchiveCorruptError(std::string(what) + " flag byte " +
                              std::to_string(flag) + " is not 0/1");
  }
  return flag == 1;
}

}  // namespace

// --- CtEntryStream --------------------------------------------------------

CtEntryStream::CtEntryStream(std::unique_ptr<detail::FileSegmentSource> source,
                             std::shared_ptr<const StringTable> strings)
    : source_(std::move(source)),
      strings_(std::move(strings)),
      reader_(*source_) {
  log_count_ = reader_.count();
}

std::optional<CtLogHeader> CtEntryStream::next_log() {
  while (entries_left_ > 0) next_entry();  // drain a partially-read log
  if (logs_read_ == log_count_) {
    source_->verify();
    return std::nullopt;
  }
  ++logs_read_;
  CtLogHeader header;
  header.id = reader_.varint();
  header.name = strings_->at(reader_.varint());
  header.log_operator = strings_->at(reader_.varint());
  const std::uint8_t trust = reader_.u8();
  if (trust > 3) {
    throw ArchiveCorruptError("trust flag byte " + std::to_string(trust) +
                              " has unknown bits set");
  }
  header.trust = {.chrome = (trust & 1u) != 0, .apple = (trust & 2u) != 0};
  if (decode_flag(reader_, "expiry shard")) {
    const util::Date begin = reader_.date();
    const util::Date end = reader_.date();
    if (end < begin) throw ArchiveCorruptError("expiry shard end before begin");
    header.expiry_shard = util::DateInterval{begin, end};
  }
  header.entry_count = reader_.count();
  entries_left_ = header.entry_count;
  next_index_ = 0;
  previous_timestamp_ = util::Date{0};
  return header;
}

std::optional<ct::LogEntry> CtEntryStream::next_entry() {
  if (entries_left_ == 0) return std::nullopt;
  --entries_left_;
  ct::LogEntry entry;
  entry.index = next_index_++;
  entry.timestamp = previous_timestamp_ + reader_.zigzag();
  previous_timestamp_ = entry.timestamp;
  const auto der = reader_.blob();
  try {
    entry.certificate = x509::Certificate::from_der(der);
  } catch (const ParseError& e) {
    throw ArchiveCorruptError(std::string("undecodable certificate DER: ") +
                              e.what());
  }
  return entry;
}

// --- RevocationStream -----------------------------------------------------

RevocationStream::RevocationStream(
    std::unique_ptr<detail::FileSegmentSource> source)
    : source_(std::move(source)), reader_(*source_) {
  const std::uint64_t aki_count = reader_.count(sizeof(crypto::Digest));
  authority_key_ids_.resize(static_cast<std::size_t>(aki_count));
  for (auto& aki : authority_key_ids_) source_->read(aki);
  count_ = reader_.count();
}

std::optional<RevocationRecord> RevocationStream::next() {
  if (read_ == count_) {
    source_->verify();
    return std::nullopt;
  }
  ++read_;
  RevocationRecord record;
  const std::uint64_t aki_index = reader_.varint();
  if (aki_index >= authority_key_ids_.size()) {
    throw ArchiveCorruptError("authority key id index " +
                              std::to_string(aki_index) + " out of range");
  }
  record.authority_key_id = authority_key_ids_[static_cast<std::size_t>(aki_index)];
  record.serial = reader_.blob();
  record.observation.revocation_date = reader_.date();
  record.observation.reason = decode_reason(reader_.varint());
  return record;
}

// --- RegistrationStream ---------------------------------------------------

RegistrationStream::RegistrationStream(
    std::unique_ptr<detail::FileSegmentSource> source,
    std::shared_ptr<const StringTable> strings)
    : source_(std::move(source)),
      strings_(std::move(strings)),
      reader_(*source_) {
  count_ = reader_.count(3);
}

std::optional<whois::NewRegistration> RegistrationStream::next() {
  if (read_ == count_) {
    source_->verify();
    return std::nullopt;
  }
  ++read_;
  whois::NewRegistration event;
  event.domain = strings_->at(reader_.varint());
  event.creation_date = reader_.date();
  if (decode_flag(reader_, "previous creation date")) {
    event.previous_creation_date = reader_.date();
  }
  return event;
}

// --- SnapshotStream -------------------------------------------------------

SnapshotStream::SnapshotStream(std::unique_ptr<detail::FileSegmentSource> source,
                               std::shared_ptr<const StringTable> strings)
    : source_(std::move(source)),
      strings_(std::move(strings)),
      reader_(*source_) {
  count_ = reader_.count();
}

std::optional<dns::DailySnapshot> SnapshotStream::next() {
  if (read_ == count_) {
    source_->verify();
    return std::nullopt;
  }
  ++read_;
  dns::DailySnapshot snapshot;
  snapshot.date = previous_date_ + reader_.zigzag();
  previous_date_ = snapshot.date;

  const std::uint64_t removed = reader_.count();
  for (std::uint64_t i = 0; i < removed; ++i) {
    const std::string& domain = strings_->at(reader_.varint());
    if (state_.erase(domain) == 0) {
      throw ArchiveCorruptError("snapshot diff removes unknown domain " + domain);
    }
  }
  const std::uint64_t upserts = reader_.count(2);
  for (std::uint64_t i = 0; i < upserts; ++i) {
    const std::string& domain = strings_->at(reader_.varint());
    dns::DomainRecords records;
    for (auto* list : {&records.a, &records.aaaa, &records.ns, &records.cname}) {
      const std::uint64_t n = reader_.count();
      list->reserve(static_cast<std::size_t>(n));
      for (std::uint64_t j = 0; j < n; ++j) {
        list->push_back(strings_->at(reader_.varint()));
      }
    }
    state_[domain] = std::move(records);
  }
  snapshot.records = state_;
  return snapshot;
}

// --- ArchiveReader --------------------------------------------------------

namespace {

std::uint64_t read_file_varint(std::ifstream& in) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const int raw = in.get();
    if (raw == std::char_traits<char>::eof()) {
      throw ArchiveTruncatedError("file ends mid segment header");
    }
    const auto byte = static_cast<std::uint8_t>(raw);
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift == 63 && byte > 1) {
        throw ArchiveCorruptError("segment length varint overflows 64 bits");
      }
      return value;
    }
  }
  throw ArchiveCorruptError("segment length varint longer than 10 bytes");
}

bool known_segment(std::uint8_t id) {
  return id >= static_cast<std::uint8_t>(SegmentId::kMeta) &&
         id <= static_cast<std::uint8_t>(SegmentId::kStats);
}

ArchiveMeta decode_meta(WireReader& reader) {
  ArchiveMeta meta;
  (void)reader.varint();  // reserved flags
  meta.profile = reader.str();
  meta.seed = reader.varint();
  meta.start = reader.date();
  meta.end = reader.date();
  if (decode_flag(reader, "revocation cutoff")) {
    meta.revocation_cutoff = reader.date();
  }
  const std::uint64_t patterns = reader.count(2);
  meta.delegation_patterns.reserve(static_cast<std::size_t>(patterns));
  for (std::uint64_t i = 0; i < patterns; ++i) {
    meta.delegation_patterns.push_back(reader.str());
  }
  meta.managed_san_pattern = reader.str();
  return meta;
}

}  // namespace

ArchiveReader::ArchiveReader(std::string path, obs::PipelineObserver* observer)
    : path_(std::move(path)), observer_(observer) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw ArchiveError("cannot open " + path_);
  in.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  std::array<std::uint8_t, kMagic.size()> magic{};
  in.read(reinterpret_cast<char*>(magic.data()), magic.size());
  if (static_cast<std::size_t>(in.gcount()) != magic.size()) {
    throw ArchiveTruncatedError("file shorter than the 8-byte magic");
  }
  if (magic != kMagic) {
    throw ArchiveCorruptError(path_ + " is not a .scw world archive (bad magic)");
  }
  std::array<std::uint8_t, 4> version_bytes{};
  in.read(reinterpret_cast<char*>(version_bytes.data()), version_bytes.size());
  if (static_cast<std::size_t>(in.gcount()) != version_bytes.size()) {
    throw ArchiveTruncatedError("file ends inside the format version field");
  }
  const std::uint32_t version = static_cast<std::uint32_t>(version_bytes[0]) |
                                (static_cast<std::uint32_t>(version_bytes[1]) << 8) |
                                (static_cast<std::uint32_t>(version_bytes[2]) << 16) |
                                (static_cast<std::uint32_t>(version_bytes[3]) << 24);
  if (version != kFormatVersion) {
    throw ArchiveVersionError("archive declares format version " +
                              std::to_string(version) + ", this reader speaks " +
                              std::to_string(kFormatVersion));
  }

  // Scan the segment table: id + length now, payload verified when read.
  while (true) {
    const int raw_id = in.get();
    if (raw_id == std::char_traits<char>::eof()) break;
    const std::uint64_t length = read_file_varint(in);
    const auto offset = static_cast<std::uint64_t>(in.tellg());
    if (file_size_ - offset < 4 || length > file_size_ - offset - 4) {
      throw ArchiveTruncatedError(
          "segment at offset " + std::to_string(offset) + " declares " +
          std::to_string(length) + " payload bytes but only " +
          std::to_string(file_size_ - offset) + " remain");
    }
    in.seekg(static_cast<std::streamoff>(offset + length));
    std::array<std::uint8_t, 4> crc_bytes{};
    in.read(reinterpret_cast<char*>(crc_bytes.data()), crc_bytes.size());
    if (static_cast<std::size_t>(in.gcount()) != crc_bytes.size()) {
      throw ArchiveTruncatedError("file ends inside a segment CRC trailer");
    }
    const std::uint32_t crc = static_cast<std::uint32_t>(crc_bytes[0]) |
                              (static_cast<std::uint32_t>(crc_bytes[1]) << 8) |
                              (static_cast<std::uint32_t>(crc_bytes[2]) << 16) |
                              (static_cast<std::uint32_t>(crc_bytes[3]) << 24);
    const auto id_byte = static_cast<std::uint8_t>(raw_id);
    if (!known_segment(id_byte)) continue;  // forward-compatible skip
    const auto id = static_cast<SegmentId>(id_byte);
    if (length == 0) {
      throw ArchiveCorruptError("segment " + to_string(id) +
                                " is empty (every dataset segment carries at "
                                "least its record count)");
    }
    if (!toc_.emplace(id, Extent{offset, length, crc}).second) {
      throw ArchiveCorruptError("duplicate segment " + to_string(id));
    }
  }

  {
    const auto bytes = read_segment(SegmentId::kMeta);
    SpanSource source(bytes);
    WireReader reader(source);
    meta_ = decode_meta(reader);
  }
  {
    const auto bytes = read_segment(SegmentId::kStrings);
    SpanSource source(bytes);
    WireReader reader(source);
    strings_ = std::make_shared<const StringTable>(StringTable::decode(reader));
  }
}

bool ArchiveReader::has_segment(SegmentId id) const {
  return toc_.find(id) != toc_.end();
}

std::uint64_t ArchiveReader::segment_bytes(SegmentId id) const {
  const auto it = toc_.find(id);
  return it == toc_.end() ? 0 : it->second.length;
}

const ArchiveReader::Extent& ArchiveReader::require(SegmentId id) const {
  const auto it = toc_.find(id);
  if (it == toc_.end()) {
    throw ArchiveCorruptError("missing segment " + to_string(id));
  }
  return it->second;
}

std::unique_ptr<detail::FileSegmentSource> ArchiveReader::open_segment(
    SegmentId id) const {
  const Extent& extent = require(id);
  return std::make_unique<detail::FileSegmentSource>(
      path_, extent.offset, extent.length, extent.crc, to_string(id));
}

std::vector<std::uint8_t> ArchiveReader::read_segment(SegmentId id) const {
  const Extent& extent = require(id);
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw ArchiveError("cannot reopen " + path_);
  in.seekg(static_cast<std::streamoff>(extent.offset));
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(extent.length));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != extent.length) {
    throw ArchiveTruncatedError("segment " + to_string(id) +
                                " ends before its declared length");
  }
  if (crc32(bytes) != extent.crc) {
    throw ArchiveCorruptError("segment " + to_string(id) + " CRC32 mismatch");
  }
  return bytes;
}

CtEntryStream ArchiveReader::ct_entries() const {
  return CtEntryStream(open_segment(SegmentId::kCtLogs), strings_);
}

RevocationStream ArchiveReader::revocations() const {
  return RevocationStream(open_segment(SegmentId::kRevocations));
}

RegistrationStream ArchiveReader::registrations() const {
  return RegistrationStream(open_segment(SegmentId::kWhois), strings_);
}

SnapshotStream ArchiveReader::snapshots() const {
  return SnapshotStream(open_segment(SegmentId::kDns), strings_);
}

sim::World::Stats ArchiveReader::stats() const {
  const auto bytes = read_segment(SegmentId::kStats);
  SpanSource source(bytes);
  WireReader reader(source);
  const std::uint64_t fields = reader.count();
  if (fields < 9) {
    throw ArchiveCorruptError("stats segment has " + std::to_string(fields) +
                              " fields, expected at least 9");
  }
  sim::World::Stats stats;
  stats.domains_registered = reader.varint();
  stats.domains_reregistered = reader.varint();
  stats.domains_transferred = reader.varint();
  stats.certificates_issued = reader.varint();
  stats.cdn_enrollments = reader.varint();
  stats.cdn_departures = reader.varint();
  stats.key_compromises = reader.varint();
  stats.other_revocations = reader.varint();
  stats.refund_abuses = reader.varint();
  // Trailing fields from a later minor revision are tolerated and ignored.
  for (std::uint64_t i = 9; i < fields; ++i) (void)reader.varint();
  return stats;
}

LoadedWorld ArchiveReader::load_world() const {
  const obs::StageScope scope(observer_, "store_load");
  LoadedWorld world;
  world.meta = meta_;

  std::uint64_t ct_entries_total = 0;
  {
    auto stream = ct_entries();
    while (const auto header = stream.next_log()) {
      const std::size_t index = world.ct_logs.add_log(
          ct::CtLog(header->id, header->name, header->log_operator,
                    header->trust, header->expiry_shard));
      ct::CtLog& log = world.ct_logs.log(index);
      while (const auto entry = stream.next_entry()) {
        log.restore_entry(entry->index, entry->timestamp, entry->certificate);
        ++ct_entries_total;
      }
    }
  }
  std::uint64_t revocation_total = 0;
  {
    auto stream = revocations();
    while (const auto record = stream.next()) {
      world.revocations.add(record->authority_key_id, record->serial,
                            record->observation);
      ++revocation_total;
    }
  }
  {
    auto stream = registrations();
    world.registrations.reserve(static_cast<std::size_t>(stream.size()));
    while (auto event = stream.next()) {
      world.registrations.push_back(std::move(*event));
    }
  }
  std::uint64_t snapshot_total = 0;
  {
    auto stream = snapshots();
    while (auto snapshot = stream.next()) {
      world.adns.add(std::move(*snapshot));
      ++snapshot_total;
    }
  }
  world.stats = stats();

  if (scope.enabled()) {
    scope.count("bytes_read", file_size_);
    scope.count("ct_entries", ct_entries_total);
    scope.count("revocations", revocation_total);
    scope.count("registrations", world.registrations.size());
    scope.count("dns_snapshots", snapshot_total);
    scope.gauge("archive_bytes", static_cast<double>(file_size_));
  }
  return world;
}

std::vector<whois::NewRegistration> LoadedWorld::re_registrations() const {
  std::vector<whois::NewRegistration> out;
  for (const auto& event : registrations) {
    if (event.previous_creation_date) out.push_back(event);
  }
  return out;
}

LoadedWorld load_world(const std::string& path, obs::PipelineObserver* observer) {
  return ArchiveReader(path, observer).load_world();
}

}  // namespace stalecert::store
