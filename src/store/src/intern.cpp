#include "stalecert/store/intern.hpp"

namespace stalecert::store {

std::uint64_t StringInterner::intern(std::string_view s) {
  const auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const std::uint64_t idx = strings_.size();
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), idx);
  return idx;
}

void StringInterner::encode(ByteSink& sink) const {
  sink.varint(strings_.size());
  for (const auto& s : strings_) sink.str(s);
}

StringTable StringTable::decode(WireReader& reader) {
  StringTable table;
  const std::uint64_t n = reader.count();
  table.strings_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) table.strings_.push_back(reader.str());
  if (table.strings_.empty() || !table.strings_.front().empty()) {
    throw ArchiveCorruptError("string table must start with the empty string");
  }
  return table;
}

const std::string& StringTable::at(std::uint64_t index) const {
  if (index >= strings_.size()) {
    throw ArchiveCorruptError("string index " + std::to_string(index) +
                              " out of range (table has " +
                              std::to_string(strings_.size()) + ")");
  }
  return strings_[static_cast<std::size_t>(index)];
}

}  // namespace stalecert::store
