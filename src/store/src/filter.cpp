#include "stalecert/store/filter.hpp"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace stalecert::store {

namespace {

/// Binary (authority key id || serial) join key, the same composition the
/// RevocationStore uses internally.
std::string join_key(const crypto::Digest& aki, const asn1::Bytes& serial) {
  std::string key;
  key.reserve(aki.size() + serial.size());
  key.append(reinterpret_cast<const char*>(aki.data()), aki.size());
  key.append(reinterpret_cast<const char*>(serial.data()), serial.size());
  return key;
}

bool keep_certificate(const x509::Certificate& cert, const WorldFilter& filter,
                      const std::function<bool(const std::string&)>& keep) {
  const auto& names = cert.dns_names();
  if (names.empty() && keep(std::string{})) return true;
  for (const auto& name : names) {
    if (keep(name)) return true;
  }
  return filter.keep_certificate_extra && filter.keep_certificate_extra(cert);
}

}  // namespace

LoadedWorld filter_world(const LoadedWorld& world, const WorldFilter& filter) {
  // A null domain predicate still needs the matched-key scan below (the
  // orphan-revocation predicate may drop records), so substitute accept-all
  // rather than special-casing.
  const std::function<bool(const std::string&)> keep_domain =
      filter.keep_domain ? filter.keep_domain
                         : [](const std::string&) { return true; };

  LoadedWorld out;
  out.meta = world.meta;
  out.stats = world.stats;

  // CT logs: rebuild each log with its archived identity, re-appending only
  // the kept entries. restore_entry() requires dense sequential indices, so
  // entries are renumbered 0..n in original order (relative order — which
  // the collect() dedup funnel depends on — is preserved). While walking,
  // record which revocation join keys are matched by kept vs. any input
  // certificates, to decide each observation's fate below.
  std::unordered_set<std::string> matched_any;
  std::unordered_set<std::string> matched_kept;
  for (const auto& log : world.ct_logs.logs()) {
    ct::CtLog rebuilt(log.id(), log.name(), log.log_operator(), log.trust(),
                      log.expiry_shard());
    std::uint64_t next_index = 0;
    for (const auto& entry : log.entries()) {
      const auto issuer_serial = entry.certificate.issuer_serial();
      const bool kept = keep_certificate(entry.certificate, filter, keep_domain);
      if (issuer_serial) {
        std::string key =
            join_key(issuer_serial->authority_key_id, issuer_serial->serial);
        if (kept) matched_kept.insert(key);
        matched_any.insert(std::move(key));
      }
      if (!kept) continue;
      rebuilt.restore_entry(next_index++, entry.timestamp, entry.certificate);
    }
    out.ct_logs.add_log(std::move(rebuilt));
  }

  // Revocations: follow the certificates. Matched-by-kept stays; matched
  // only by dropped certificates leaves with them; a key matching no input
  // certificate at all is an orphan the caller's predicate places.
  for (const auto& entry : world.revocations.entries()) {
    const std::string key = join_key(entry.authority_key_id, entry.serial);
    bool keep = false;
    if (matched_kept.contains(key)) {
      keep = true;
    } else if (matched_any.contains(key)) {
      keep = false;
    } else {
      keep = !filter.keep_unmatched_revocation ||
             filter.keep_unmatched_revocation(entry.authority_key_id,
                                              entry.serial);
    }
    if (keep) {
      out.revocations.add(entry.authority_key_id, entry.serial,
                          entry.observation);
    }
  }

  out.registrations.reserve(world.registrations.size());
  for (const auto& event : world.registrations) {
    if (keep_domain(event.domain)) out.registrations.push_back(event);
  }

  // Every day survives, possibly empty: the departure detector diffs
  // consecutive days, so the chain's length and dates are load-bearing.
  for (const auto& day : world.adns.all()) {
    dns::DailySnapshot snapshot;
    snapshot.date = day.date;
    for (const auto& [domain, records] : day.records) {
      if (keep_domain(domain)) snapshot.records.emplace(domain, records);
    }
    out.adns.add(std::move(snapshot));
  }

  return out;
}

std::uint64_t save_world(const LoadedWorld& world, const std::string& path,
                         obs::PipelineObserver* observer) {
  return ArchiveWriter(world.meta)
      .ct_logs(world.ct_logs)
      .revocations(world.revocations)
      .registrations(world.registrations)
      .adns(world.adns)
      .stats(world.stats)
      .write(path, observer);
}

}  // namespace stalecert::store
