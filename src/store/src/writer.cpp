#include <fstream>

#include "stalecert/obs/observer.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::store {

std::string to_string(SegmentId id) {
  switch (id) {
    case SegmentId::kMeta: return "meta";
    case SegmentId::kStrings: return "strings";
    case SegmentId::kCtLogs: return "ct_logs";
    case SegmentId::kRevocations: return "revocations";
    case SegmentId::kWhois: return "whois";
    case SegmentId::kDns: return "dns";
    case SegmentId::kStats: return "stats";
  }
  return "segment#" + std::to_string(static_cast<unsigned>(id));
}

namespace {

void encode_meta(const ArchiveMeta& meta, ByteSink& sink) {
  sink.varint(0);  // reserved flags
  sink.str(meta.profile);
  sink.varint(meta.seed);
  sink.date(meta.start);
  sink.date(meta.end);
  sink.u8(meta.revocation_cutoff ? 1 : 0);
  if (meta.revocation_cutoff) sink.date(*meta.revocation_cutoff);
  sink.varint(meta.delegation_patterns.size());
  for (const auto& pattern : meta.delegation_patterns) sink.str(pattern);
  sink.str(meta.managed_san_pattern);
}

std::uint64_t encode_ct(const ct::LogSet* logs, StringInterner& interner,
                        ByteSink& sink) {
  std::uint64_t total_entries = 0;
  if (logs == nullptr) {
    sink.varint(0);
    return 0;
  }
  sink.varint(logs->log_count());
  for (const auto& log : logs->logs()) {
    sink.varint(log.id());
    sink.varint(interner.intern(log.name()));
    sink.varint(interner.intern(log.log_operator()));
    sink.u8(static_cast<std::uint8_t>((log.trust().chrome ? 1u : 0u) |
                                      (log.trust().apple ? 2u : 0u)));
    const auto& shard = log.expiry_shard();
    sink.u8(shard ? 1 : 0);
    if (shard) {
      sink.date(shard->begin());
      sink.date(shard->end());
    }
    sink.varint(log.entries().size());
    util::Date previous{0};  // timestamps are non-decreasing: deltas stay tiny
    for (const auto& entry : log.entries()) {
      sink.zigzag(entry.timestamp - previous);
      previous = entry.timestamp;
      sink.blob(entry.certificate.to_der());
      ++total_entries;
    }
  }
  return total_entries;
}

std::uint64_t encode_revocations(const revocation::RevocationStore* store,
                                 ByteSink& sink) {
  if (store == nullptr) {
    sink.varint(0);
    sink.varint(0);
    return 0;
  }
  const auto entries = store->entries();
  // Authority key ids repeat heavily (one per issuing CA key): dedup into a
  // local table, first-seen order.
  std::vector<crypto::Digest> akis;
  std::map<crypto::Digest, std::uint64_t> aki_index;
  for (const auto& entry : entries) {
    if (aki_index.emplace(entry.authority_key_id, akis.size()).second) {
      akis.push_back(entry.authority_key_id);
    }
  }
  sink.varint(akis.size());
  for (const auto& aki : akis) sink.bytes(aki);
  sink.varint(entries.size());
  for (const auto& entry : entries) {
    sink.varint(aki_index.at(entry.authority_key_id));
    sink.blob(entry.serial);
    sink.date(entry.observation.revocation_date);
    sink.varint(static_cast<std::uint64_t>(entry.observation.reason));
  }
  return entries.size();
}

std::uint64_t encode_whois(const std::vector<whois::NewRegistration>* events,
                           StringInterner& interner, ByteSink& sink) {
  if (events == nullptr) {
    sink.varint(0);
    return 0;
  }
  sink.varint(events->size());
  for (const auto& event : *events) {
    sink.varint(interner.intern(event.domain));
    sink.date(event.creation_date);
    sink.u8(event.previous_creation_date ? 1 : 0);
    if (event.previous_creation_date) sink.date(*event.previous_creation_date);
  }
  return events->size();
}

void encode_records(const dns::DomainRecords& records, StringInterner& interner,
                    ByteSink& sink) {
  for (const auto* list : {&records.a, &records.aaaa, &records.ns, &records.cname}) {
    sink.varint(list->size());
    for (const auto& value : *list) sink.varint(interner.intern(value));
  }
}

std::uint64_t encode_dns(const dns::SnapshotStore* snapshots,
                         StringInterner& interner, ByteSink& sink) {
  if (snapshots == nullptr) {
    sink.varint(0);
    return 0;
  }
  sink.varint(snapshots->days());
  util::Date previous_date{0};
  const std::map<std::string, dns::DomainRecords> empty;
  const std::map<std::string, dns::DomainRecords>* previous = &empty;
  for (const auto& snapshot : snapshots->all()) {
    sink.zigzag(snapshot.date - previous_date);
    previous_date = snapshot.date;
    // Day-over-day diff: domains that disappeared, then upserts (new or
    // changed record sets). Consecutive scans of a slowly-churning zone
    // make this the dominant compression win of the format.
    std::vector<std::uint64_t> removed;
    for (const auto& [domain, records] : *previous) {
      if (snapshot.records.find(domain) == snapshot.records.end()) {
        removed.push_back(interner.intern(domain));
      }
    }
    sink.varint(removed.size());
    for (const std::uint64_t idx : removed) sink.varint(idx);

    std::vector<const std::pair<const std::string, dns::DomainRecords>*> upserts;
    for (const auto& item : snapshot.records) {
      const auto it = previous->find(item.first);
      if (it == previous->end() || !(it->second == item.second)) {
        upserts.push_back(&item);
      }
    }
    sink.varint(upserts.size());
    for (const auto* item : upserts) {
      sink.varint(interner.intern(item->first));
      encode_records(item->second, interner, sink);
    }
    previous = &snapshot.records;
  }
  return snapshots->days();
}

void encode_stats(const sim::World::Stats& stats, ByteSink& sink) {
  // Field-count prefix: readers tolerate (ignore) trailing fields added in
  // later minor revisions of the same format version.
  sink.varint(9);
  sink.varint(stats.domains_registered);
  sink.varint(stats.domains_reregistered);
  sink.varint(stats.domains_transferred);
  sink.varint(stats.certificates_issued);
  sink.varint(stats.cdn_enrollments);
  sink.varint(stats.cdn_departures);
  sink.varint(stats.key_compromises);
  sink.varint(stats.other_revocations);
  sink.varint(stats.refund_abuses);
}

void frame_segment(SegmentId id, const ByteSink& payload, ByteSink& out) {
  out.u8(static_cast<std::uint8_t>(id));
  out.varint(payload.size());
  out.bytes(payload.data());
  out.u32le(crc32(payload.data()));
}

}  // namespace

ArchiveWriter& ArchiveWriter::ct_logs(const ct::LogSet& logs) {
  logs_ = &logs;
  return *this;
}

ArchiveWriter& ArchiveWriter::revocations(const revocation::RevocationStore& store) {
  revocations_ = &store;
  return *this;
}

ArchiveWriter& ArchiveWriter::registrations(
    const std::vector<whois::NewRegistration>& events) {
  registrations_ = &events;
  return *this;
}

ArchiveWriter& ArchiveWriter::adns(const dns::SnapshotStore& snapshots) {
  adns_ = &snapshots;
  return *this;
}

ArchiveWriter& ArchiveWriter::stats(const sim::World::Stats& ground_truth) {
  stats_ = ground_truth;
  return *this;
}

std::uint64_t ArchiveWriter::write(const std::string& path,
                                   obs::PipelineObserver* observer) {
  const obs::StageScope scope(observer, "store_save");
  StringInterner interner;

  // Data segments are encoded first (interning as they go); the string
  // table is complete by the time it is framed, and precedes every segment
  // that references it in the file.
  ByteSink ct_payload, revocation_payload, whois_payload, dns_payload,
      stats_payload, meta_payload, strings_payload;
  const std::uint64_t ct_entries = encode_ct(logs_, interner, ct_payload);
  const std::uint64_t revocation_count =
      encode_revocations(revocations_, revocation_payload);
  const std::uint64_t registration_count =
      encode_whois(registrations_, interner, whois_payload);
  const std::uint64_t snapshot_count = encode_dns(adns_, interner, dns_payload);
  encode_stats(stats_, stats_payload);
  encode_meta(meta_, meta_payload);
  interner.encode(strings_payload);

  ByteSink file;
  file.bytes(kMagic);
  file.u32le(kFormatVersion);
  frame_segment(SegmentId::kMeta, meta_payload, file);
  frame_segment(SegmentId::kStrings, strings_payload, file);
  frame_segment(SegmentId::kCtLogs, ct_payload, file);
  frame_segment(SegmentId::kRevocations, revocation_payload, file);
  frame_segment(SegmentId::kWhois, whois_payload, file);
  frame_segment(SegmentId::kDns, dns_payload, file);
  frame_segment(SegmentId::kStats, stats_payload, file);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ArchiveError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(file.data().data()),
            static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out) throw ArchiveError("short write to " + path);

  if (scope.enabled()) {
    scope.count("bytes_written", file.size());
    scope.count("ct_entries", ct_entries);
    scope.count("revocations", revocation_count);
    scope.count("registrations", registration_count);
    scope.count("dns_snapshots", snapshot_count);
    scope.count("strings_interned", interner.size());
    scope.gauge("archive_bytes", static_cast<double>(file.size()));
  }
  return file.size();
}

std::uint64_t save_world(const sim::World& world, const std::string& path,
                         obs::PipelineObserver* observer,
                         const std::string& profile) {
  const sim::WorldConfig& config = world.config();
  ArchiveMeta meta;
  meta.profile = profile;
  meta.seed = config.seed;
  meta.start = config.start;
  // An extended world (World::extend) reaches past its configured end; the
  // archive records the actually-simulated horizon so readers see the true
  // data window. For a plain run() world this is exactly config.end, which
  // keeps existing archives (incl. the golden fixture) byte-identical.
  meta.end = world.horizon();
  meta.revocation_cutoff = config.revocation_cutoff;
  meta.delegation_patterns = world.cloudflare_delegation_patterns();
  meta.managed_san_pattern = world.cloudflare_san_pattern();

  const auto registrations = world.whois().new_registrations();
  return ArchiveWriter(std::move(meta))
      .ct_logs(world.ct_logs())
      .revocations(world.crl_collection().store())
      .registrations(registrations)
      .adns(world.adns())
      .stats(world.stats())
      .write(path, observer);
}

}  // namespace stalecert::store
