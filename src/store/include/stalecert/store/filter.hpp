#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "stalecert/store/archive.hpp"

namespace stalecert::store {

/// Record-level predicate set for carving a sub-world out of a LoadedWorld.
/// The store layer is deliberately policy-free: it applies whatever
/// predicates it is handed (the shard routing policy lives in
/// stalecert::cluster) and only owns the mechanics — rebuilding CT logs
/// with dense entry indices, keeping the revocation join consistent, and
/// preserving the aDNS day chain.
struct WorldFilter {
  /// Keep records mentioning this domain name? Applied to raw names as they
  /// appear in the datasets (certificate SANs, WHOIS domains, aDNS rows).
  /// Certificates are kept when ANY of their names passes; a certificate
  /// with no names is consulted as keep_domain(""). Null keeps everything.
  std::function<bool(const std::string&)> keep_domain;

  /// Additional OR'd certificate predicate, consulted after keep_domain
  /// misses on every name. A shard plan uses it to ALSO replicate each
  /// certificate onto the home shards of its serial and SPKI routing keys,
  /// which is what makes per-shard distinct-key and revoked-serial counts
  /// sum exactly to the single-node numbers (each key string has one home
  /// shard, and that shard provably holds every member). Null adds nothing.
  std::function<bool(const x509::Certificate&)> keep_certificate_extra;

  /// Revocations join CT on (authority key id, serial). An observation whose
  /// key matches a KEPT certificate is always kept; one matching only
  /// DROPPED certificates is always dropped (it belongs to whichever
  /// sub-world kept the certificate). Observations matching NO certificate
  /// in the INPUT world are routed through this predicate so a shard plan
  /// can assign each orphan to exactly one shard. Null keeps all orphans.
  std::function<bool(const crypto::Digest&, const asn1::Bytes&)>
      keep_unmatched_revocation;
};

/// Applies the filter to every dataset: CT logs are rebuilt per log with
/// entries renumbered densely (original timestamps preserved), revocations
/// follow their certificates, WHOIS events and aDNS rows are kept iff their
/// domain passes. Every aDNS day survives (possibly with zero rows) so the
/// day-over-day diff chain keeps its length. `meta` and `stats` are copied
/// unchanged — stats remain the FULL world's ground truth, which keeps a
/// union of shard archives self-describing about their origin.
LoadedWorld filter_world(const LoadedWorld& world, const WorldFilter& filter);

/// Archives an already-materialized world — the save path for filtered
/// sub-worlds, which have no sim::World behind them. Returns total bytes
/// written.
std::uint64_t save_world(const LoadedWorld& world, const std::string& path,
                         obs::PipelineObserver* observer = nullptr);

}  // namespace stalecert::store
