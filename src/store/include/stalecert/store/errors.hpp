#pragma once

#include <string>

#include "stalecert/util/error.hpp"

namespace stalecert::store {

/// Base class for every world-archive failure. Corruption is always
/// reported through one of these typed errors — never undefined behavior,
/// never a crash — so callers can distinguish "bad file" from "bad code".
class ArchiveError : public Error {
 public:
  explicit ArchiveError(const std::string& what) : Error("archive: " + what) {}
};

/// The file ends before the declared structure does: short magic, a
/// segment whose declared length runs past EOF, or a record cut mid-field.
class ArchiveTruncatedError : public ArchiveError {
 public:
  explicit ArchiveTruncatedError(const std::string& what)
      : ArchiveError("truncated: " + what) {}
};

/// The bytes are structurally invalid: bad magic, CRC mismatch, overlong
/// varint, out-of-bounds length, empty segment, duplicate segment, or a
/// field value outside its legal range.
class ArchiveCorruptError : public ArchiveError {
 public:
  explicit ArchiveCorruptError(const std::string& what)
      : ArchiveError("corrupt: " + what) {}
};

/// The archive declares a format version this reader does not speak.
/// Version bumps are deliberate (see src/store/README.md); refusing to
/// guess is the whole point.
class ArchiveVersionError : public ArchiveError {
 public:
  explicit ArchiveVersionError(const std::string& what)
      : ArchiveError("version: " + what) {}
};

}  // namespace stalecert::store
