#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stalecert/store/wire.hpp"

namespace stalecert::store {

/// Write-side string interner: every FQDN / registrar / record value is
/// stored once in the kStrings segment and referenced by varint index
/// everywhere else. Index 0 is reserved for the empty string so "no value"
/// encodes in one byte.
class StringInterner {
 public:
  StringInterner() { intern(""); }

  /// Returns the stable index for `s`, inserting it on first sight.
  std::uint64_t intern(std::string_view s);

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

  /// Encodes the table as the kStrings segment payload.
  void encode(ByteSink& sink) const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint64_t> index_;
};

/// Read-side interned table, decoded from the kStrings segment. Lookup
/// validates the index, so a corrupt reference is a typed error.
class StringTable {
 public:
  static StringTable decode(WireReader& reader);

  [[nodiscard]] const std::string& at(std::uint64_t index) const;
  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
};

}  // namespace stalecert::store
