#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"

namespace stalecert::store {

/// First 8 bytes of every .scw file.
inline constexpr std::array<std::uint8_t, 8> kMagic = {'S', 'C', 'W', 'A',
                                                       'R', 'C', 'H', 0};

/// Format version, bumped on ANY byte-level change (see src/store/README.md
/// for the versioning policy). Readers refuse versions they do not speak.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Segment identifiers. One segment per Table-3 dataset plus the two
/// bookkeeping segments (meta, string table). Ids are stable forever; new
/// segment kinds get new ids and readers skip ids they do not know.
enum class SegmentId : std::uint8_t {
  kMeta = 1,         // archive provenance + pipeline parameters
  kStrings = 2,      // interned string table (FQDNs, registrants, values)
  kCtLogs = 3,       // CT log definitions + entries (Table 3: CT)
  kRevocations = 4,  // aggregated CRL observations (Table 3: CRLs)
  kWhois = 5,        // new-registration event stream (Table 3: WHOIS)
  kDns = 6,          // daily snapshot diffs (Table 3: active DNS)
  kStats = 7,        // simulator ground-truth counters
};

std::string to_string(SegmentId id);

/// Provenance and pipeline parameters stored in the kMeta segment: enough
/// to (a) re-run the analysis with the same posture the generator used and
/// (b) regenerate the world from scratch when the config profile is known.
struct ArchiveMeta {
  /// Named WorldConfig profile the generator used ("small", "default") or
  /// "custom" when the config is not reproducible from a name.
  std::string profile = "custom";
  std::uint64_t seed = 0;
  util::Date start;
  util::Date end;
  /// Paper §4.1 revocation cutoff the generator's config carried.
  std::optional<util::Date> revocation_cutoff;
  /// Managed-TLS provider identification for the departure detector.
  std::vector<std::string> delegation_patterns;
  std::string managed_san_pattern;

  bool operator==(const ArchiveMeta&) const = default;
};

}  // namespace stalecert::store
