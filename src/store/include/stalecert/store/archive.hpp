#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/ct/logset.hpp"
#include "stalecert/dns/scan.hpp"
#include "stalecert/revocation/collector.hpp"
#include "stalecert/sim/world.hpp"
#include "stalecert/store/format.hpp"
#include "stalecert/store/intern.hpp"
#include "stalecert/store/wire.hpp"
#include "stalecert/whois/database.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::store {

namespace detail {

/// Buffered, CRC-accumulating ByteSource over one segment extent of an
/// archive file. Each stream owns one, so several streams can walk the same
/// archive concurrently out-of-core.
class FileSegmentSource final : public ByteSource {
 public:
  FileSegmentSource(const std::string& path, std::uint64_t offset,
                    std::uint64_t length, std::uint32_t expected_crc,
                    std::string segment_name);

  void read(std::span<std::uint8_t> out) override;
  [[nodiscard]] std::uint64_t remaining() const override {
    return length_ - consumed_;
  }

  /// Once the payload is fully consumed, checks the running CRC32 against
  /// the segment trailer; throws ArchiveCorruptError on mismatch.
  void verify();

 private:
  void refill();

  std::ifstream file_;
  std::string segment_name_;
  std::uint64_t length_;
  std::uint64_t consumed_ = 0;
  std::uint32_t expected_crc_;
  std::uint32_t crc_ = 0;
  std::vector<std::uint8_t> buffer_;
  std::size_t buffer_pos_ = 0;
  std::size_t buffer_end_ = 0;
  bool verified_ = false;
};

}  // namespace detail

// --- Streaming cursors ----------------------------------------------------
//
// Every stream is a pull-based cursor over one segment: next() decodes one
// record at a time from a bounded file window, so analysis can run
// out-of-core on archives larger than RAM (only the shared string table is
// fully resident). When a stream is exhausted it verifies the segment CRC;
// corruption therefore surfaces as a typed error no later than the last
// record.

/// One CT log's identity as stored in the archive, ahead of its entries.
struct CtLogHeader {
  std::uint64_t id = 0;
  std::string name;
  std::string log_operator;
  ct::TrustFlags trust;
  std::optional<util::DateInterval> expiry_shard;
  std::uint64_t entry_count = 0;
};

/// Cursor over the kCtLogs segment: alternate next_log() with next_entry()
/// until each returns nullopt.
class CtEntryStream {
 public:
  /// Advances to the next log header; nullopt when all logs are read (the
  /// segment CRC is verified at that point).
  std::optional<CtLogHeader> next_log();
  /// Next entry of the current log; nullopt at the end of the log.
  std::optional<ct::LogEntry> next_entry();

  [[nodiscard]] std::uint64_t log_count() const { return log_count_; }

 private:
  friend class ArchiveReader;
  CtEntryStream(std::unique_ptr<detail::FileSegmentSource> source,
                std::shared_ptr<const StringTable> strings);

  std::unique_ptr<detail::FileSegmentSource> source_;
  std::shared_ptr<const StringTable> strings_;
  WireReader reader_;
  std::uint64_t log_count_ = 0;
  std::uint64_t logs_read_ = 0;
  std::uint64_t entries_left_ = 0;   // in the current log
  std::uint64_t next_index_ = 0;     // per-log entry index
  util::Date previous_timestamp_{0};  // delta base within the current log
};

/// One aggregated revocation observation, keyed like the CT join (§4.1).
struct RevocationRecord {
  crypto::Digest authority_key_id{};
  asn1::Bytes serial;
  revocation::RevocationStore::Observation observation;
};

class RevocationStream {
 public:
  std::optional<RevocationRecord> next();
  [[nodiscard]] std::uint64_t size() const { return count_; }

 private:
  friend class ArchiveReader;
  explicit RevocationStream(std::unique_ptr<detail::FileSegmentSource> source);

  std::unique_ptr<detail::FileSegmentSource> source_;
  WireReader reader_;
  std::vector<crypto::Digest> authority_key_ids_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

class RegistrationStream {
 public:
  std::optional<whois::NewRegistration> next();
  [[nodiscard]] std::uint64_t size() const { return count_; }

 private:
  friend class ArchiveReader;
  RegistrationStream(std::unique_ptr<detail::FileSegmentSource> source,
                     std::shared_ptr<const StringTable> strings);

  std::unique_ptr<detail::FileSegmentSource> source_;
  std::shared_ptr<const StringTable> strings_;
  WireReader reader_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

/// Cursor over the kDns segment. Snapshots are stored as day-over-day
/// diffs; the stream materializes one full DailySnapshot at a time by
/// applying each diff to its running state (the out-of-core unit is one
/// day, not the whole scan campaign).
class SnapshotStream {
 public:
  std::optional<dns::DailySnapshot> next();
  [[nodiscard]] std::uint64_t size() const { return count_; }

 private:
  friend class ArchiveReader;
  SnapshotStream(std::unique_ptr<detail::FileSegmentSource> source,
                 std::shared_ptr<const StringTable> strings);

  std::unique_ptr<detail::FileSegmentSource> source_;
  std::shared_ptr<const StringTable> strings_;
  WireReader reader_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
  util::Date previous_date_{0};
  std::map<std::string, dns::DomainRecords> state_;
};

// --- Whole-world load -----------------------------------------------------

/// Everything run_pipeline needs, materialized from one archive.
struct LoadedWorld {
  ArchiveMeta meta;
  ct::LogSet ct_logs;
  revocation::RevocationStore revocations;
  /// Full new-registration event stream, first sightings included.
  std::vector<whois::NewRegistration> registrations;
  dns::SnapshotStore adns;
  sim::World::Stats stats;

  /// The conservative subset with an observed previous creation date —
  /// what the paper's detector (and full_survey) consumes.
  [[nodiscard]] std::vector<whois::NewRegistration> re_registrations() const;
};

// --- Writer ---------------------------------------------------------------

/// Assembles one .scw archive from individually supplied datasets. All
/// datasets are optional (absent ones are written empty); the referenced
/// objects must outlive write(). For the common case, see save_world().
class ArchiveWriter {
 public:
  explicit ArchiveWriter(ArchiveMeta meta) : meta_(std::move(meta)) {}

  ArchiveWriter& ct_logs(const ct::LogSet& logs);
  ArchiveWriter& revocations(const revocation::RevocationStore& store);
  ArchiveWriter& registrations(const std::vector<whois::NewRegistration>& events);
  ArchiveWriter& adns(const dns::SnapshotStore& snapshots);
  ArchiveWriter& stats(const sim::World::Stats& ground_truth);

  /// Encodes every segment and writes the archive. Returns total bytes
  /// written. Reports bytes / records / wall-clock under the stage name
  /// "store_save" when `observer` is non-null.
  std::uint64_t write(const std::string& path,
                      obs::PipelineObserver* observer = nullptr);

 private:
  ArchiveMeta meta_;
  const ct::LogSet* logs_ = nullptr;
  const revocation::RevocationStore* revocations_ = nullptr;
  const std::vector<whois::NewRegistration>* registrations_ = nullptr;
  const dns::SnapshotStore* adns_ = nullptr;
  sim::World::Stats stats_{};
};

// --- Reader ---------------------------------------------------------------

/// Opens an archive: validates magic and version, scans the segment table,
/// and eagerly decodes the meta + string segments (everything else is read
/// on demand). Unknown segment ids are skipped — additions are the
/// backward-compatible kind of format change; everything else bumps
/// kFormatVersion.
class ArchiveReader {
 public:
  explicit ArchiveReader(std::string path,
                         obs::PipelineObserver* observer = nullptr);

  [[nodiscard]] const ArchiveMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint64_t file_size() const { return file_size_; }
  [[nodiscard]] bool has_segment(SegmentId id) const;
  /// Payload bytes of a segment, 0 when absent.
  [[nodiscard]] std::uint64_t segment_bytes(SegmentId id) const;

  // Streaming access (out-of-core).
  [[nodiscard]] CtEntryStream ct_entries() const;
  [[nodiscard]] RevocationStream revocations() const;
  [[nodiscard]] RegistrationStream registrations() const;
  [[nodiscard]] SnapshotStream snapshots() const;
  [[nodiscard]] sim::World::Stats stats() const;

  /// Materializes the whole archive. Reports bytes / records / wall-clock
  /// under the stage name "store_load" through the observer given at
  /// construction.
  [[nodiscard]] LoadedWorld load_world() const;

 private:
  struct Extent {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
  };

  [[nodiscard]] const Extent& require(SegmentId id) const;
  [[nodiscard]] std::unique_ptr<detail::FileSegmentSource> open_segment(
      SegmentId id) const;
  /// Reads a whole segment into memory with the CRC verified up front.
  [[nodiscard]] std::vector<std::uint8_t> read_segment(SegmentId id) const;

  std::string path_;
  obs::PipelineObserver* observer_;
  std::uint64_t file_size_ = 0;
  std::map<SegmentId, Extent> toc_;
  ArchiveMeta meta_;
  std::shared_ptr<const StringTable> strings_;
};

// --- Convenience ----------------------------------------------------------

/// Saves a simulated world's Table-3 datasets (CT, CRL observations, WHOIS
/// stream, aDNS snapshots) plus ground-truth stats and pipeline parameters.
/// Returns total bytes written. `profile` names the WorldConfig recipe used
/// to build `world` ("small", "default") so analyze-side tools can offer an
/// in-memory regeneration; pass "custom" when no named profile applies.
std::uint64_t save_world(const sim::World& world, const std::string& path,
                         obs::PipelineObserver* observer = nullptr,
                         const std::string& profile = "custom");

/// One-call load: open + materialize.
LoadedWorld load_world(const std::string& path,
                       obs::PipelineObserver* observer = nullptr);

}  // namespace stalecert::store
