#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stalecert/store/errors.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::store {

// --- CRC32 (IEEE 802.3 / zlib polynomial, reflected) ----------------------

/// Incremental update: feed segments in order, starting from crc = 0.
std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data);

inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0, data);
}

// --- Zigzag ---------------------------------------------------------------

/// Maps signed to unsigned so small-magnitude values (dates near an epoch,
/// deltas) get short varints: 0,-1,1,-2,... -> 0,1,2,3,...
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// --- Write side -----------------------------------------------------------

/// Growable byte buffer with the archive's primitive encoders. Segments are
/// built in memory through a ByteSink, then framed (id + length + CRC) when
/// the file is assembled.
class ByteSink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32le(std::uint32_t v);
  /// LEB128 base-128 varint, low bits first.
  void varint(std::uint64_t v);
  void zigzag(std::int64_t v) { varint(zigzag_encode(v)); }
  void date(util::Date d) { zigzag(d.days_since_epoch()); }
  void bytes(std::span<const std::uint8_t> data);
  /// varint length + raw bytes.
  void str(std::string_view s);
  void blob(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// --- Read side ------------------------------------------------------------

/// Pull-based byte source a decoder reads from. Implementations exist over
/// an in-memory buffer (SpanSource) and over one file-backed segment extent
/// (ArchiveReader's streaming path); both enforce exact bounds so corrupt
/// lengths surface as typed errors, never out-of-bounds reads.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Copies exactly out.size() bytes; throws ArchiveTruncatedError if
  /// fewer remain.
  virtual void read(std::span<std::uint8_t> out) = 0;
  /// Bytes left in this source.
  [[nodiscard]] virtual std::uint64_t remaining() const = 0;
};

/// ByteSource over a caller-owned in-memory buffer.
class SpanSource final : public ByteSource {
 public:
  explicit SpanSource(std::span<const std::uint8_t> data) : data_(data) {}
  void read(std::span<std::uint8_t> out) override;
  [[nodiscard]] std::uint64_t remaining() const override {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Typed decoder over a ByteSource. Every length read from the wire is
/// checked against the source's remaining size before any allocation, so a
/// corrupt length cannot cause an over-allocation or over-read.
class WireReader {
 public:
  explicit WireReader(ByteSource& source) : source_(&source) {}

  std::uint8_t u8();
  std::uint32_t u32le();
  /// Throws ArchiveCorruptError on overlong (>10 byte) varints and
  /// ArchiveTruncatedError when the source ends mid-varint.
  std::uint64_t varint();
  std::int64_t zigzag() { return zigzag_decode(varint()); }
  util::Date date() { return util::Date{zigzag()}; }
  /// varint length + raw bytes, bounds-checked.
  std::vector<std::uint8_t> blob();
  std::string str();
  /// varint count, bounds-checked against `min_record_bytes` per record so
  /// a corrupt count cannot drive a huge reserve().
  std::uint64_t count(std::uint64_t min_record_bytes = 1);

  [[nodiscard]] std::uint64_t remaining() const { return source_->remaining(); }

 private:
  ByteSource* source_;
};

}  // namespace stalecert::store
