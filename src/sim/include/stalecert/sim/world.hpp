#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/ca/authority.hpp"
#include "stalecert/cdn/provider.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/dns/scan.hpp"
#include "stalecert/dns/zone.hpp"
#include "stalecert/registrar/lifecycle.hpp"
#include "stalecert/reputation/service.hpp"
#include "stalecert/revocation/collector.hpp"
#include "stalecert/sim/config.hpp"
#include "stalecert/util/rng.hpp"
#include "stalecert/whois/database.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::sim {

/// The synthetic web-PKI world: domains, registrants, CAs, CT logs, a
/// Cloudflare-style managed-TLS provider, WHOIS feeds, daily DNS scans and
/// CRL collection, advanced one simulated day at a time. After run(), the
/// accessors expose exactly the datasets of the paper's Table 3.
class World : public ca::ValidationEnvironment {
 public:
  explicit World(WorldConfig config);
  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Simulates from config.start to config.end.
  void run();
  /// Advances a single day (exposed for incremental tests).
  void step();
  /// Continues the simulation `days` past the configured horizon (run()
  /// must have completed first). Tail days run in "live" mode: the WHOIS,
  /// aDNS and CRL collection windows are treated as open-ended, because a
  /// live measurement pipeline never stops collecting. Deterministic: the
  /// RNG stream simply continues, so extend(1) seven times produces the
  /// same world as extend(7), and the base period is untouched — interp()
  /// and the compromise ramp clamp at the configured end, so tail days
  /// hold the final rates rather than extrapolating.
  void extend(std::int64_t days);
  [[nodiscard]] util::Date today() const { return today_; }
  /// Last simulated day: config.end for a run() world, later if extended.
  [[nodiscard]] util::Date horizon() const {
    return today_ > config_.end ? today_ - 1 : config_.end;
  }
  /// The configuration this world was built from (archival provenance).
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  /// Optional telemetry sink: run() reports generator counters (domains,
  /// issuances, revocations, CDN churn) and wall-clock under the stage
  /// name "sim_run". nullptr (the default) disables reporting.
  void set_observer(obs::PipelineObserver* observer) { observer_ = observer; }

  // --- Dataset accessors (Table 3) ---
  [[nodiscard]] ct::LogSet& ct_logs() { return ct_logs_; }
  [[nodiscard]] const ct::LogSet& ct_logs() const { return ct_logs_; }
  [[nodiscard]] const whois::WhoisDatabase& whois() const { return whois_; }
  [[nodiscard]] const dns::SnapshotStore& adns() const { return adns_; }
  [[nodiscard]] const revocation::CrlCollector& crl_collection() const;
  [[nodiscard]] const dns::DnsDatabase& dns_db() const { return dns_; }
  [[nodiscard]] const registrar::Registry& registry() const { return registry_; }
  [[nodiscard]] const reputation::ReputationService& reputation() const {
    return reputation_;
  }
  [[nodiscard]] const cdn::ManagedTlsProvider& cloudflare() const;
  [[nodiscard]] const std::vector<std::unique_ptr<ca::CertificateAuthority>>& cas()
      const {
    return cas_;
  }

  /// Every e2LD that ever existed (popularity universe).
  [[nodiscard]] std::vector<std::string> domain_universe() const;

  /// Managed-TLS delegation / SAN patterns for the Cloudflare model —
  /// feed these to core::detect_managed_tls_departure.
  [[nodiscard]] std::vector<std::string> cloudflare_delegation_patterns() const;
  [[nodiscard]] std::string cloudflare_san_pattern() const;

  // --- ValidationEnvironment (what a CA can observe) ---
  [[nodiscard]] bool controls_dns(const std::string& domain,
                                  ca::ActorId actor) const override;
  [[nodiscard]] bool controls_web(const std::string& domain,
                                  ca::ActorId actor) const override;

  // --- Ground truth for tests ---
  struct Stats {
    std::uint64_t domains_registered = 0;
    std::uint64_t domains_reregistered = 0;
    std::uint64_t domains_transferred = 0;  // scenario 1: WHOIS-invisible
    std::uint64_t certificates_issued = 0;
    std::uint64_t cdn_enrollments = 0;
    std::uint64_t cdn_departures = 0;
    std::uint64_t key_compromises = 0;
    std::uint64_t other_revocations = 0;
    std::uint64_t refund_abuses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class TlsPath : std::uint8_t { kNone, kSelfManaged, kManagedCdn };

  struct Site {
    registrar::RegistrantId owner = 0;
    TlsPath path = TlsPath::kNone;
    std::size_t ca_index = 0;
    crypto::KeyPair key;
    std::optional<util::DateInterval> cert_validity;
    std::optional<std::int64_t> requested_days;  // multi-year manual certs
    bool automated = false;  // ACME auto-renewal
    bool owner_active = true;
    bool renewal_decided = false;  // registration-renewal roll already made
    util::Date tenure_start;
  };

  void setup_cas();
  void setup_cloudflare();
  std::string fresh_domain_name();
  void register_new_domain(util::Date date, bool is_rereg,
                           std::optional<std::string> name = std::nullopt);
  void adopt_https(const std::string& domain, Site& site, util::Date date);
  void issue_self_managed(const std::string& domain, Site& site, util::Date date);
  void record_whois(const std::string& domain, util::Date date);
  void process_renewals(util::Date date);
  void process_domain_expiries(util::Date date);
  void process_cdn_attrition(util::Date date);
  void inject_key_compromises(util::Date date);
  void inject_other_revocations(util::Date date);
  void run_godaddy_breach(util::Date date);
  void maybe_seed_malicious(const std::string& domain, util::Date tenure_start,
                            util::Date tenure_end);
  [[nodiscard]] double interp(double a, double b) const;  // progress start->end
  [[nodiscard]] std::size_t pick_ca(util::Date date);

  WorldConfig config_;
  util::Rng rng_;
  util::Date today_;
  /// Set by extend(): collection windows are held open past their
  /// configured ends so the tail behaves like a live feed.
  bool live_tail_ = false;
  obs::PipelineObserver* observer_ = nullptr;
  registrar::RegistrantId next_registrant_ = 1;
  std::uint64_t name_counter_ = 0;

  ct::LogSet ct_logs_;
  dns::DnsDatabase dns_;
  registrar::Registry registry_;
  whois::WhoisDatabase whois_;
  dns::SnapshotStore adns_;
  reputation::ReputationService reputation_;
  std::vector<std::unique_ptr<ca::CertificateAuthority>> cas_;
  std::size_t godaddy_ca_ = 0;
  std::size_t letsencrypt_ca_ = 0;
  std::size_t comodo_ca_ = 0;
  std::size_t cloudflare_ca_ = 0;
  std::unique_ptr<cdn::ManagedTlsProvider> cloudflare_;
  std::unique_ptr<revocation::CrlCollector> crl_collector_;

  std::map<std::string, Site> sites_;
  /// Self-managed certificates eligible for compromise/revocation:
  /// (domain, ca index, serial snapshot).
  std::vector<std::pair<std::string, x509::Certificate>> revocable_;
  std::vector<std::string> universe_;
  /// Scheduled re-registrations: date -> domains to re-register that day.
  std::map<util::Date, std::vector<std::string>> rereg_schedule_;
  Stats stats_;
};

}  // namespace stalecert::sim
