#pragma once

#include <cstdint>
#include <string>

#include "stalecert/util/date.hpp"

namespace stalecert::sim {

/// Configuration for the synthetic web-PKI world. Defaults reproduce the
/// qualitative dynamics reported in the paper at laptop scale:
/// HTTPS adoption ramps through the 2010s, Let's Encrypt launches in 2016
/// and dominates post-2018, Cloudflare packs customers into COMODO
/// cruise-liner certificates until mid-2019, GoDaddy suffers its
/// November-2021 key-exposure breach, and Let's Encrypt starts publishing
/// keyCompromise revocations in July 2022.
struct WorldConfig {
  std::uint64_t seed = 42;

  util::Date start = util::Date::from_ymd(2013, 1, 1);
  util::Date end = util::Date::from_ymd(2023, 5, 12);

  // --- Domain population ---
  std::size_t initial_domains = 3000;
  double daily_new_domains_start = 4.0;   // arrivals/day at `start`
  double daily_new_domains_end = 14.0;    // arrivals/day at `end` (linear ramp)
  /// Probability the registrant renews at expiry (per expiration).
  double renewal_probability = 0.62;
  /// Probability a released domain is re-registered (drop-catch et al.).
  double reregistration_probability = 0.50;
  /// Max days after release until re-registration (uniform).
  std::int64_t max_reregistration_delay_days = 45;
  /// Rate of registrar refund-window abuse registrations per day.
  double daily_refund_abuse = 0.05;
  /// Rate of scenario-1 registrant transfers per day (domain sold without
  /// expiring). These do NOT reset the registry creation date and are
  /// therefore invisible to the paper's WHOIS methodology (§4.4) — the
  /// simulator keeps ground truth so tests can verify the lower-bound
  /// property.
  double daily_domain_transfers = 0.05;

  // --- HTTPS / certificate adoption ---
  double https_adoption_start = 0.25;  // fraction of new domains w/ TLS, 2013
  double https_adoption_end = 0.85;    // 2023
  /// Of TLS domains, the fraction using managed TLS (CDN), ramping up.
  double cdn_share_start = 0.10;
  double cdn_share_end = 0.45;
  /// Monthly probability an enrolled customer departs the CDN.
  double cdn_monthly_attrition = 0.012;
  /// Manual (non-ACME) subscribers fail to renew on time with this prob.
  double manual_renewal_lapse = 0.25;

  // --- Key compromise & revocation ---
  /// Expected baseline key-compromise revocations per day in 2021, ramping
  /// to 3x by 2023 (the paper observes gradual growth).
  double daily_key_compromise_2021 = 0.12;
  double key_compromise_growth = 3.0;
  /// Expected non-compromise revocations per day (superseded, cessation...).
  double daily_other_revocations = 2.0;
  bool godaddy_breach = true;
  util::Date godaddy_breach_start = util::Date::from_ymd(2021, 11, 15);
  util::Date godaddy_breach_end = util::Date::from_ymd(2021, 12, 31);
  /// Number of certificates revoked in the breach window.
  std::size_t godaddy_breach_revocations = 400;
  util::Date le_kc_publication_start = util::Date::from_ymd(2022, 7, 1);

  // --- Cloudflare managed-TLS model ---
  std::size_t cruiseliner_capacity = 30;
  util::Date cloudflare_per_domain_switch = util::Date::from_ymd(2019, 7, 1);
  /// §7.2 mitigation experiment: run the provider in Keyless-SSL mode.
  bool cloudflare_keyless = false;

  // --- Measurement windows (paper Table 3/4) ---
  util::Date whois_start = util::Date::from_ymd(2016, 1, 1);
  util::Date whois_end = util::Date::from_ymd(2021, 7, 8);
  util::Date adns_start = util::Date::from_ymd(2022, 8, 1);
  util::Date adns_end = util::Date::from_ymd(2022, 10, 30);
  util::Date crl_start = util::Date::from_ymd(2022, 11, 1);
  util::Date crl_end = util::Date::from_ymd(2023, 5, 5);
  util::Date revocation_cutoff = util::Date::from_ymd(2021, 10, 1);

  // --- Reputation ---
  /// Probability a departing/abandoning registrant was malicious.
  double malicious_owner_probability = 0.02;

  /// Use a single CT log instead of the full sharded ecosystem (smaller
  /// memory footprint for large runs; collection results are identical
  /// after dedup).
  bool lean_ct = true;
};

/// A scaled-down config for unit tests: two simulated years, small rates.
WorldConfig small_test_config();

}  // namespace stalecert::sim
