#include "stalecert/sim/config.hpp"

namespace stalecert::sim {

WorldConfig small_test_config() {
  WorldConfig config;
  config.seed = 7;
  config.start = util::Date::from_ymd(2021, 1, 1);
  config.end = util::Date::from_ymd(2022, 12, 31);
  config.initial_domains = 700;
  config.daily_new_domains_start = 1.5;
  config.daily_new_domains_end = 3.0;
  config.daily_key_compromise_2021 = 0.06;
  config.daily_other_revocations = 0.25;
  config.godaddy_breach_revocations = 25;
  config.whois_start = util::Date::from_ymd(2021, 1, 1);
  config.whois_end = util::Date::from_ymd(2022, 12, 31);
  config.adns_start = util::Date::from_ymd(2022, 3, 1);
  config.adns_end = util::Date::from_ymd(2022, 5, 30);
  config.crl_start = util::Date::from_ymd(2022, 6, 1);
  config.crl_end = util::Date::from_ymd(2022, 12, 31);
  config.revocation_cutoff = util::Date::from_ymd(2021, 1, 1);
  config.cdn_monthly_attrition = 0.03;
  return config;
}

}  // namespace stalecert::sim
