#include "stalecert/sim/world.hpp"

#include <algorithm>
#include <array>

#include "stalecert/dns/name.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::sim {
namespace {

constexpr ca::ActorId kCloudflareActor = 0xC10D'F1A2'0000'0001ULL;

const std::array<std::pair<const char*, double>, 7> kTldWeights = {{
    {"com", 0.60},
    {"net", 0.12},
    {"org", 0.12},
    {"io", 0.04},
    {"info", 0.04},
    {"co.uk", 0.04},
    {"de", 0.04},
}};

}  // namespace

World::World(WorldConfig config)
    : config_(config), rng_(config.seed), today_(config.start) {
  if (config_.end < config_.start) throw LogicError("World: end before start");
  setup_cas();
  setup_cloudflare();
  crl_collector_ =
      std::make_unique<revocation::CrlCollector>(config_.seed ^ 0xC011EC70ULL);
  // Seed the initial domain population, staggered over the preceding year
  // so certificates and expirations don't all align on day one.
  for (std::size_t i = 0; i < config_.initial_domains; ++i) {
    register_new_domain(config_.start - rng_.between(0, 364), /*is_rereg=*/false);
  }
}

World::~World() = default;

void World::setup_cas() {
  auto add = [this](ca::CaProfile profile) {
    profile.crl_url = "http://crl." + profile.organization + ".example/latest.crl";
    auto ca = std::make_unique<ca::CertificateAuthority>(std::move(profile),
                                                         rng_.next());
    ca->attach_ct(&ct_logs_);
    ca->attach_validation(this);
    cas_.push_back(std::move(ca));
    return cas_.size() - 1;
  };

  if (config_.lean_ct) {
    ct_logs_.add_log(ct::CtLog{1, "omnibus", "Example Trust",
                               {.chrome = true, .apple = true}});
  } else {
    ct_logs_ = ct::make_historical_log_ecosystem();
  }

  letsencrypt_ca_ = add({.name = "Let's Encrypt X3",
                         .organization = "ISRG (Let's Encrypt)",
                         .self_imposed_max_days = 90,
                         .default_days = 90,
                         .automated = true});
  add({.name = "DigiCert SHA2 Secure Server CA",
       .organization = "DigiCert",
       .default_days = 365});
  add({.name = "Sectigo RSA DV CA",
       .organization = "Sectigo",
       .default_days = 365});
  godaddy_ca_ = add({.name = "Go Daddy Secure CA - G2",
                     .organization = "GoDaddy",
                     .default_days = 398});
  add({.name = "Entrust Certification Authority - L1K",
       .organization = "Entrust",
       .default_days = 365});
  add({.name = "cPanel, Inc. CA",
       .organization = "cPanel",
       .self_imposed_max_days = 90,
       .default_days = 90,
       .automated = true});
  comodo_ca_ = add({.name = "COMODO ECC DV Secure Server CA 2",
                    .organization = "COMODO",
                    .default_days = 365});
  cloudflare_ca_ = add({.name = "CloudFlare ECC CA-2",
                        .organization = "Cloudflare",
                        .default_days = 365});
}

void World::setup_cloudflare() {
  cdn::ProviderConfig provider;
  provider.name = "Cloudflare";
  provider.ns_suffix = "ns.cloudflare.com";
  provider.cname_suffix = "cdn.cloudflare.com";
  provider.managed_san_pattern = "sni*.cloudflaressl.com";
  provider.cruiseliner_capacity = config_.cruiseliner_capacity;
  provider.per_domain_switch = config_.cloudflare_per_domain_switch;
  provider.managed_cert_days = 365;
  provider.actor = kCloudflareActor;
  provider.keyless_ssl = config_.cloudflare_keyless;
  cloudflare_ = std::make_unique<cdn::ManagedTlsProvider>(
      provider, cas_[comodo_ca_].get(), cas_[cloudflare_ca_].get(), &dns_,
      rng_.next());
}

const cdn::ManagedTlsProvider& World::cloudflare() const { return *cloudflare_; }

const revocation::CrlCollector& World::crl_collection() const {
  return *crl_collector_;
}

std::vector<std::string> World::cloudflare_delegation_patterns() const {
  return {"*." + cloudflare_->config().ns_suffix,
          "*." + cloudflare_->config().cname_suffix};
}

std::string World::cloudflare_san_pattern() const {
  return cloudflare_->config().managed_san_pattern;
}

double World::interp(double a, double b) const {
  const double span = static_cast<double>(config_.end - config_.start);
  if (span <= 0) return b;
  const double progress =
      std::clamp(static_cast<double>(today_ - config_.start) / span, 0.0, 1.0);
  return a + (b - a) * progress;
}

std::string World::fresh_domain_name() {
  std::vector<double> weights;
  weights.reserve(kTldWeights.size());
  for (const auto& [tld, w] : kTldWeights) weights.push_back(w);
  const auto& [tld, weight] = kTldWeights[rng_.weighted_pick(weights)];
  return rng_.alpha_label(4) + std::to_string(name_counter_++) + "." + tld;
}

std::size_t World::pick_ca(util::Date date) {
  // Market shares: Let's Encrypt launches in 2016 and grows to dominate;
  // legacy commercial CAs shrink proportionally.
  const bool le_available = date >= util::Date::from_ymd(2016, 1, 1);
  const double le_share = le_available ? interp(0.05, 0.55) : 0.0;
  const double rest = 1.0 - le_share;
  // Order: LE, DigiCert, Sectigo, GoDaddy, Entrust, cPanel (COMODO and the
  // Cloudflare CA only issue through the managed-TLS provider).
  const std::vector<double> weights = {le_share,     rest * 0.28, rest * 0.22,
                                       rest * 0.26,  rest * 0.10, rest * 0.14};
  return rng_.weighted_pick(weights);
}

void World::register_new_domain(util::Date date, bool is_rereg,
                                std::optional<std::string> name) {
  const std::string domain = name ? *name : fresh_domain_name();
  const auto dot = domain.find('.');
  const std::string tld = domain.substr(dot + 1);

  const registrar::RegistrantId owner = next_registrant_++;
  registry_.register_domain(domain, owner, "Registrar-" + std::to_string(owner % 7),
                            date, static_cast<int>(rng_.between(1, 2)));
  dns_.add_to_zone(tld, domain);
  dns_.set_ns(domain, {"ns1.hosting" + std::to_string(owner % 50) + ".example",
                       "ns2.hosting.example"});
  dns_.set_a(domain, {"192.0.2." + std::to_string(1 + rng_.below(250))});

  Site site;
  site.owner = owner;
  site.tenure_start = date;
  record_whois(domain, date);
  if (is_rereg) {
    ++stats_.domains_reregistered;
  } else {
    ++stats_.domains_registered;
    universe_.push_back(domain);
  }

  // Insert before HTTPS adoption: DV validation consults sites_ to decide
  // who controls the domain.
  Site& stored = (sites_[domain] = std::move(site));
  const double https_share = interp(config_.https_adoption_start,
                                    config_.https_adoption_end);
  if (rng_.chance(https_share)) adopt_https(domain, stored, date);
}

void World::adopt_https(const std::string& domain, Site& site, util::Date date) {
  const double cdn_share = interp(config_.cdn_share_start, config_.cdn_share_end);
  if (rng_.chance(cdn_share)) {
    const auto kind = rng_.chance(0.5) ? cdn::DelegationKind::kCname
                                       : cdn::DelegationKind::kNs;
    cloudflare_->enroll(domain, kind, date);
    site.path = TlsPath::kManagedCdn;
    ++stats_.cdn_enrollments;
    stats_.certificates_issued += 1;
    return;
  }
  site.path = TlsPath::kSelfManaged;
  site.ca_index = pick_ca(date);
  site.automated = cas_[site.ca_index]->profile().automated;
  site.key = crypto::KeyPair::derive(domain + "/" + date.to_string(),
                                     crypto::KeyAlgorithm::kEcdsaP256);
  // Manual subscribers historically bought multi-year certificates (up to
  // 39 months before Ballot 193); the CA clamps to the era's maximum.
  site.requested_days =
      site.automated ? std::optional<std::int64_t>{}
                     : std::optional<std::int64_t>{365 * rng_.between(1, 3)};
  issue_self_managed(domain, site, date);
}

void World::issue_self_managed(const std::string& domain, Site& site,
                               util::Date date) {
  ca::IssuanceRequest request;
  request.domains = {domain, "www." + domain};
  request.subscriber_key = site.key;
  request.account = site.owner;
  request.date = date;
  request.requested_days = site.requested_days;
  request.challenge =
      site.automated ? ca::ChallengeType::kHttp01 : ca::ChallengeType::kDns01;
  const auto outcome = cas_[site.ca_index]->issue(request);
  if (!outcome.ok()) return;  // lost control (e.g. domain lapsed) — no cert
  site.cert_validity = outcome.certificate->validity();
  revocable_.emplace_back(domain, *outcome.certificate);
  ++stats_.certificates_issued;
}

void World::record_whois(const std::string& domain, util::Date date) {
  if (date < config_.whois_start) return;
  if (date > config_.whois_end && !live_tail_) return;
  const auto* reg = registry_.find(domain);
  if (!reg) return;
  whois::ThinRecord record;
  record.domain = domain;
  record.registrar = reg->registrar;
  record.creation_date = reg->creation_date;
  record.updated_date = date;
  record.expiration_date = reg->expiration_date;
  record.name_servers = dns_.ns(domain);
  record.status = {"clientTransferProhibited"};
  // Round-trip through WHOIS text in a random format family, exercising
  // the tolerant parser exactly as a bulk collection pipeline would.
  const auto format = static_cast<whois::TextFormat>(rng_.below(3));
  whois_.ingest_text(whois::emit_text(record, format));
}

void World::process_renewals(util::Date date) {
  for (auto& [domain, site] : sites_) {
    if (!site.owner_active || site.path != TlsPath::kSelfManaged) continue;
    if (!site.cert_validity) continue;
    const std::int64_t remaining = site.cert_validity->end() - date;
    if (remaining > 30) continue;
    if (registry_.state(domain) != registrar::DomainState::kActive) continue;
    if (!site.automated && rng_.chance(config_.manual_renewal_lapse)) continue;
    issue_self_managed(domain, site, date);
  }
  cloudflare_->renew_expiring(date);
}

void World::process_domain_expiries(util::Date date) {
  // Renewal decisions for registrations entering the grace period.
  for (const auto* reg : registry_.registered_domains()) {
    if (reg->state != registrar::DomainState::kAutoRenewGrace) continue;
    auto site_it = sites_.find(reg->domain);
    if (site_it == sites_.end()) continue;
    Site& site = site_it->second;
    if (site.renewal_decided) continue;
    site.renewal_decided = true;
    if (rng_.chance(config_.renewal_probability)) {
      registry_.renew(reg->domain, date, 1);
      record_whois(reg->domain, date);
      site.renewal_decided = false;  // fresh decision at next expiry
    } else {
      site.owner_active = false;  // letting the domain lapse
    }
  }

  const std::vector<std::string> released = registry_.advance(date);
  for (const auto& domain : released) {
    auto site_it = sites_.find(domain);
    if (site_it != sites_.end()) {
      const Site& site = site_it->second;
      maybe_seed_malicious(domain, site.tenure_start, date);
      if (cloudflare_->is_enrolled(domain)) {
        cloudflare_->depart(domain, date);
        ++stats_.cdn_departures;
      }
      sites_.erase(site_it);
    }
    dns_.clear_records(domain);
    if (rng_.chance(config_.reregistration_probability)) {
      const util::Date when =
          date + rng_.between(1, config_.max_reregistration_delay_days);
      rereg_schedule_[when].push_back(domain);
    }
  }
}

void World::process_cdn_attrition(util::Date date) {
  std::vector<std::string> departing;
  for (const auto& enrollment : cloudflare_->enrollment_history()) {
    if (enrollment.end) continue;
    if (rng_.chance(config_.cdn_monthly_attrition)) {
      departing.push_back(enrollment.domain);
    }
  }
  for (const auto& domain : departing) {
    cloudflare_->depart(domain, date);
    ++stats_.cdn_departures;
    // The migrating customer typically stands up TLS elsewhere.
    auto site_it = sites_.find(domain);
    if (site_it != sites_.end() && site_it->second.owner_active) {
      Site& site = site_it->second;
      site.path = TlsPath::kSelfManaged;
      site.ca_index = pick_ca(date);
      site.automated = cas_[site.ca_index]->profile().automated;
      site.key = crypto::KeyPair::derive(domain + "/migrated/" + date.to_string(),
                                         crypto::KeyAlgorithm::kEcdsaP256);
      issue_self_managed(domain, site, date);
    }
  }
}

void World::inject_key_compromises(util::Date date) {
  // Baseline rate: small before 2021, then the paper's observed ramp.
  const util::Date ramp_start = util::Date::from_ymd(2021, 1, 1);
  double rate = 0.05;
  if (date >= ramp_start) {
    const double progress =
        std::clamp(static_cast<double>(date - ramp_start) /
                       static_cast<double>(config_.end - ramp_start),
                   0.0, 1.0);
    rate = config_.daily_key_compromise_2021 *
           (1.0 + (config_.key_compromise_growth - 1.0) * progress);
  }
  const std::uint64_t events = rng_.poisson(rate);
  for (std::uint64_t i = 0; i < events && !revocable_.empty(); ++i) {
    const auto& [domain, cert] = revocable_[rng_.below(revocable_.size())];
    if (!cert.valid_at(date)) continue;
    // Key-compromise revocations overwhelmingly hit recently issued
    // certificates (leaked keys are spotted fast by key scanners and the
    // subscriber re-keys) — the paper's Figure 8 shows ~99% of compromise
    // events within 90 days of issuance. Bias accordingly.
    const std::int64_t age = date - cert.not_before();
    if (age > 90 && !rng_.chance(0.03)) continue;
    // Which CA issued it?
    for (auto& ca : cas_) {
      if (ca->issuing_key().key_id() ==
          cert.extensions().authority_key_id.value_or(crypto::Digest{})) {
        const bool le = ca.get() == cas_[letsencrypt_ca_].get();
        const auto reason = (le && date < config_.le_kc_publication_start)
                                ? revocation::ReasonCode::kUnspecified
                                : revocation::ReasonCode::kKeyCompromise;
        if (ca->revoke(cert, date, reason)) ++stats_.key_compromises;
        break;
      }
    }
  }
}

void World::inject_other_revocations(util::Date date) {
  const std::uint64_t events = rng_.poisson(config_.daily_other_revocations);
  static const std::vector<double> kReasonWeights = {0.55, 0.30, 0.08, 0.07};
  static const std::vector<revocation::ReasonCode> kReasons = {
      revocation::ReasonCode::kSuperseded,
      revocation::ReasonCode::kCessationOfOperation,
      revocation::ReasonCode::kAffiliationChanged,
      revocation::ReasonCode::kPrivilegeWithdrawn};
  for (std::uint64_t i = 0; i < events && !revocable_.empty(); ++i) {
    const auto& [domain, cert] = revocable_[rng_.below(revocable_.size())];
    if (!cert.valid_at(date)) continue;
    const auto reason = kReasons[rng_.weighted_pick(kReasonWeights)];
    for (auto& ca : cas_) {
      if (ca->issuing_key().key_id() ==
          cert.extensions().authority_key_id.value_or(crypto::Digest{})) {
        if (ca->revoke(cert, date, reason)) ++stats_.other_revocations;
        break;
      }
    }
  }
}

void World::run_godaddy_breach(util::Date date) {
  if (!config_.godaddy_breach) return;
  if (date < config_.godaddy_breach_start || date > config_.godaddy_breach_end) {
    return;
  }
  const std::int64_t window_days =
      (config_.godaddy_breach_end - config_.godaddy_breach_start) + 1;
  const double per_day = static_cast<double>(config_.godaddy_breach_revocations) /
                         static_cast<double>(window_days);
  auto& godaddy = *cas_[godaddy_ca_];

  // Candidate pools: the breached Managed WordPress certificates were
  // auto-issued and recently renewed, so revocations overwhelmingly hit
  // young certificates (cf. the paper's Figure 8: ~99% of key-compromise
  // events fall within 90 days of issuance).
  std::vector<const x509::Certificate*> young;
  std::vector<const x509::Certificate*> older;
  for (const auto& [domain, cert] : revocable_) {
    if (!cert.valid_at(date)) continue;
    if (cert.extensions().authority_key_id.value_or(crypto::Digest{}) !=
        godaddy.issuing_key().key_id()) {
      continue;
    }
    if (godaddy.is_revoked(cert)) continue;
    (date - cert.not_before() <= 90 ? young : older).push_back(&cert);
  }

  const std::uint64_t quota = rng_.poisson(per_day);
  for (std::uint64_t i = 0; i < quota; ++i) {
    auto& pool =
        (!young.empty() && (older.empty() || !rng_.chance(0.02))) ? young : older;
    if (pool.empty()) break;
    const std::size_t index = rng_.below(pool.size());
    if (godaddy.revoke(*pool[index], date, revocation::ReasonCode::kKeyCompromise)) {
      ++stats_.key_compromises;
    }
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(index));
  }
}

void World::maybe_seed_malicious(const std::string& domain, util::Date tenure_start,
                                 util::Date tenure_end) {
  if (!rng_.chance(config_.malicious_owner_probability)) return;
  const util::Date active = tenure_start + rng_.between(
      0, std::max<std::int64_t>(1, tenure_end - tenure_start));

  // Table 5 mix: URL-only dominates (661), malware-only second (328),
  // overlap rare (24).
  const double roll = rng_.uniform();
  const bool seed_urls = roll < 0.69;
  const bool seed_files = roll >= 0.66;

  if (seed_urls) {
    static const std::vector<double> kCatWeights = {0.54, 0.28, 0.18};
    static const std::vector<reputation::UrlCategory> kCats = {
        reputation::UrlCategory::kPhishing, reputation::UrlCategory::kMalicious,
        reputation::UrlCategory::kMalware};
    const auto category = kCats[rng_.weighted_pick(kCatWeights)];
    std::vector<reputation::UrlVerdict> verdicts;
    const std::uint64_t vendors = 5 + rng_.below(8);
    for (std::uint64_t v = 0; v < vendors; ++v) {
      verdicts.push_back({"vendor" + std::to_string(v), category,
                          active + static_cast<std::int64_t>(rng_.below(30))});
    }
    reputation_.seed_url_verdicts(domain, std::move(verdicts));
  }
  if (seed_files) {
    static const std::vector<double> kFamWeights = {82, 74, 53, 51, 29, 27, 18, 18};
    static const std::vector<std::string> kFamilies = {
        "grayware", "backdoor", "unknownfam", "downloader",
        "virus",    "spyware",  "ransomware", "otherfam"};
    const std::string family = kFamilies[rng_.weighted_pick(kFamWeights)];
    reputation::FileReport file;
    file.sha256 = crypto::digest_hex(crypto::Sha256::hash("mw/" + domain));
    file.first_submission = active;
    for (int v = 0; v < 6; ++v) {
      file.av_labels.push_back("Trojan." + family + "!gen" + std::to_string(v));
    }
    reputation_.seed_file(domain, std::move(file));
  }
}

void World::step() {
  const util::Date date = today_;

  // 0. First day of WHOIS collection: bulk snapshot of every existing
  //    registration (the industry feed starts with a full dump, which is
  //    what lets later creation-date changes be recognized as
  //    re-registrations).
  if (date == config_.whois_start) {
    for (const auto* reg : registry_.registered_domains()) {
      record_whois(reg->domain, date);
    }
  }

  // 1. New domain arrivals.
  const double arrival_rate =
      interp(config_.daily_new_domains_start, config_.daily_new_domains_end);
  const std::uint64_t arrivals = rng_.poisson(arrival_rate);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    register_new_domain(date, /*is_rereg=*/false);
  }

  // 1b. Refund-window abuse: register, certify for 13 months, delete.
  if (rng_.chance(config_.daily_refund_abuse)) {
    const std::string domain = fresh_domain_name();
    register_new_domain(date, /*is_rereg=*/false, domain);
    auto& site = sites_[domain];
    if (site.path == TlsPath::kNone) {
      site.path = TlsPath::kSelfManaged;
      site.ca_index = godaddy_ca_;
      site.key = crypto::KeyPair::derive(domain + "/abuse", crypto::KeyAlgorithm::kRsa2048);
      issue_self_managed(domain, site, date);
    }
    if (cloudflare_->is_enrolled(domain)) cloudflare_->depart(domain, date);
    registry_.delete_domain(domain, date);
    maybe_seed_malicious(domain, date, date);
    sites_.erase(domain);
    dns_.clear_records(domain);
    ++stats_.refund_abuses;
    // The victim (or a squatter) picks it up shortly after.
    if (rng_.chance(0.8)) {
      rereg_schedule_[date + rng_.between(3, 45)].push_back(domain);
    }
  }

  // 1c. Scenario-1 registrant transfers: the domain is sold while active.
  //     The registry creation date survives, so the WHOIS detector cannot
  //     see these — ground truth for the lower-bound property (§4.4).
  if (rng_.chance(config_.daily_domain_transfers) && !sites_.empty()) {
    // Pick a pseudo-random active site via the ordered map.
    auto it = sites_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng_.below(sites_.size())));
    const std::string& domain = it->first;
    if (registry_.state(domain) == registrar::DomainState::kActive) {
      const registrar::RegistrantId buyer = next_registrant_++;
      registry_.transfer(domain, buyer,
                         "Registrar-" + std::to_string(buyer % 7), date);
      it->second.owner = buyer;  // buyer now controls DNS/web
      it->second.tenure_start = date;
      record_whois(domain, date);  // updated record, creation date unchanged
      ++stats_.domains_transferred;
    }
  }

  // 2. Scheduled re-registrations.
  if (const auto it = rereg_schedule_.find(date); it != rereg_schedule_.end()) {
    for (const auto& domain : it->second) {
      if (registry_.state(domain) == registrar::DomainState::kAvailable) {
        register_new_domain(date, /*is_rereg=*/true, domain);
      }
    }
    rereg_schedule_.erase(it);
  }

  // 3. Weekly lifecycle sweep + monthly renewals/attrition.
  const std::int64_t day_index = date - config_.start;
  if (day_index % 7 == 0) process_domain_expiries(date);
  if (day_index % 28 == 0) {
    process_renewals(date);
    process_cdn_attrition(date);
    // Compact the revocable pool: drop long-expired certificates.
    std::erase_if(revocable_, [&](const auto& entry) {
      return entry.second.not_after() + 30 < date;
    });
  }

  // 4. Revocation activity.
  inject_key_compromises(date);
  inject_other_revocations(date);
  run_godaddy_breach(date);

  // 5. Measurement pipelines. In live-tail mode (extend()) the collection
  //    windows stay open: a deployed pipeline keeps scanning and fetching
  //    past any planned study end date.
  if (date >= config_.adns_start && (date <= config_.adns_end || live_tail_)) {
    dns::ScanEngine engine(dns_);
    dns::DailySnapshot full = engine.scan(date);
    // Retain the Cloudflare-relevant slice (the detectors' working set).
    dns::DailySnapshot slice;
    slice.date = full.date;
    const auto patterns = cloudflare_delegation_patterns();
    for (auto& [domain, records] : full.records) {
      const bool relevant =
          std::any_of(patterns.begin(), patterns.end(), [&](const auto& p) {
            return records.delegates_to(p);
          });
      if (relevant) slice.records.emplace(domain, std::move(records));
    }
    adns_.add(slice);
  }
  if (date >= config_.crl_start && (date <= config_.crl_end || live_tail_)) {
    if (crl_collector_->coverage().empty()) {
      // First collection day: build the CCADB-style disclosure list.
      for (const auto& ca : cas_) {
        revocation::DisclosedCrl endpoint;
        endpoint.ca_name = ca->profile().organization;
        endpoint.url = ca->profile().crl_url;
        const auto* authority = ca.get();
        endpoint.fetch = [authority](util::Date d) {
          return std::optional<asn1::Bytes>(authority->crl_at(d).to_der());
        };
        // A couple of CAs have scrape protection (Appendix B / Table 7).
        if (ca->profile().organization == "Entrust") {
          endpoint.failure_probability = 0.015;
        } else if (ca->profile().organization == "Sectigo") {
          endpoint.failure_probability = 0.004;
        } else if (ca->profile().organization == "GoDaddy") {
          endpoint.failure_probability = 0.02;
        }
        crl_collector_->add_endpoint(std::move(endpoint));
      }
    }
    crl_collector_->collect_daily(date);
  }

  ++today_;
}

void World::run() {
  const obs::StageScope scope(observer_, "sim_run");
  const Stats before = stats_;
  const util::Date first = today_;
  while (today_ <= config_.end) step();
  if (scope.enabled()) {
    scope.count("days_simulated", static_cast<std::uint64_t>(today_ - first));
    scope.count("domains_registered",
                stats_.domains_registered - before.domains_registered);
    scope.count("domains_reregistered",
                stats_.domains_reregistered - before.domains_reregistered);
    scope.count("domains_transferred",
                stats_.domains_transferred - before.domains_transferred);
    scope.count("certificates_issued",
                stats_.certificates_issued - before.certificates_issued);
    scope.count("cdn_enrollments", stats_.cdn_enrollments - before.cdn_enrollments);
    scope.count("cdn_departures", stats_.cdn_departures - before.cdn_departures);
    scope.count("key_compromises", stats_.key_compromises - before.key_compromises);
    scope.count("other_revocations",
                stats_.other_revocations - before.other_revocations);
    scope.count("refund_abuses", stats_.refund_abuses - before.refund_abuses);
    scope.count("ct_entries", ct_logs_.total_entries());
    scope.gauge("active_sites", static_cast<double>(sites_.size()));
    scope.gauge("revocable_pool", static_cast<double>(revocable_.size()));
    scope.gauge("adns_snapshot_days", static_cast<double>(adns_.days()));
  }
}

void World::extend(std::int64_t days) {
  if (days < 0) throw LogicError("World::extend: negative day count");
  if (today_ <= config_.end) {
    throw LogicError("World::extend: run() the world to its horizon first");
  }
  live_tail_ = true;
  const util::Date stop = today_ + days;
  while (today_ < stop) step();
}

std::vector<std::string> World::domain_universe() const { return universe_; }

bool World::controls_dns(const std::string& domain, ca::ActorId actor) const {
  const auto base = dns::e2ld(domain).value_or(domain);
  if (actor == kCloudflareActor) return cloudflare_->is_enrolled(base);
  const auto it = sites_.find(base);
  if (it == sites_.end()) return false;
  return it->second.owner == actor &&
         registry_.state(base) != registrar::DomainState::kAvailable;
}

bool World::controls_web(const std::string& domain, ca::ActorId actor) const {
  const auto base = dns::e2ld(domain).value_or(domain);
  if (cloudflare_->is_enrolled(base)) {
    // External HTTP reaches the CDN edge while enrolled.
    return actor == kCloudflareActor;
  }
  return controls_dns(domain, actor);
}

}  // namespace stalecert::sim
