#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "stalecert/net/http.hpp"

namespace stalecert::net {

/// A blocking HTTP/1.1 client connection with keep-alive: one TCP
/// connection, sequential exchanges, responses parsed by the shared
/// Http1ResponseCodec. Used by the stalecert_query CLI, the serving
/// tests, and bench_query's closed-loop load threads (one client per
/// thread). The router's concurrent fan-out uses net::fetch_all instead.
class HttpClient {
 public:
  /// Connects immediately; throws NetError when the server is
  /// unreachable. A non-zero `timeout` bounds the connect AND every
  /// subsequent socket send/recv; crossing it throws NetTimeoutError
  /// (which deliberately bypasses the reconnect retry in request() — a
  /// slow server is not a closed keep-alive connection). Zero = block
  /// indefinitely, the pre-cluster behavior.
  HttpClient(const std::string& host, std::uint16_t port,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(0));
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  ~HttpClient();

  struct Result {
    int status = 0;
    std::string content_type;
    std::string body;
  };

  /// Issues one GET for `target` (path + optional query string, already
  /// encoded). Reconnects transparently if the server closed the
  /// connection between requests; throws NetError when the exchange
  /// cannot be completed at all.
  Result get(const std::string& target);
  /// Same exchange with an arbitrary method and optional request body
  /// (sent with a Content-Length header when non-empty). HEAD responses
  /// carry a Content-Length but no body and are handled accordingly.
  Result request(const std::string& method, const std::string& target,
                 const std::string& body = {},
                 const std::string& content_type = "text/plain");
  Result head(const std::string& target) { return request("HEAD", target); }
  Result post(const std::string& target, const std::string& body,
              const std::string& content_type = "text/plain") {
    return request("POST", target, body, content_type);
  }

 private:
  void connect();
  void close();
  std::optional<Result> try_request(const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    const std::string& content_type);

  std::string host_;
  std::uint16_t port_;
  std::chrono::milliseconds timeout_{0};
  int fd_ = -1;
};

/// One-shot convenience: connect, GET, disconnect.
HttpClient::Result http_get(const std::string& host, std::uint16_t port,
                            const std::string& target);

}  // namespace stalecert::net
