#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace stalecert::net {

/// One leg of a scatter: a GET against host:port. An idle keep-alive fd
/// from a previous fetch can be adopted via reuse_fd (ownership passes to
/// fetch_all — on failure it is closed, and the retry connects fresh).
struct FetchSpec {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string target;
  int reuse_fd = -1;
};

struct FetchResult {
  enum class Outcome {
    kOk,       // exchange completed (any HTTP status)
    kError,    // refused / reset / unparseable after every attempt
    kTimeout,  // the per-leg deadline expired on the final attempt
  };
  Outcome outcome = Outcome::kError;
  int status = 0;
  std::string content_type;
  std::string body;
  /// On kOk with a keep-alive response: the still-connected fd, handed
  /// back for pooling. -1 when the server closed (or on failure). The
  /// caller owns it.
  int keep_fd = -1;
  /// Human-readable failure detail (kError / kTimeout).
  std::string error;
  /// Wall-clock from the leg's first attempt to its completion (all
  /// attempts included) — feeds the router's per-shard latency histogram.
  std::chrono::nanoseconds elapsed{0};
};

/// Scatters every spec concurrently on one private EventLoop owned by the
/// calling thread: nonblocking connect, send, incremental response parse —
/// all legs in flight at once, which is what lets the router contact N
/// shards under one `timeout` instead of N of them. Each leg gets the
/// full deadline (0 = none) and up to `attempts` tries; a retry abandons
/// the leg's current connection (covering the benign stale-pooled-fd
/// case) and starts a fresh connect under a fresh deadline. Blocks until
/// every leg finished; results[i] answers specs[i].
std::vector<FetchResult> fetch_all(const std::vector<FetchSpec>& specs,
                                   std::chrono::milliseconds timeout,
                                   int attempts = 2);

}  // namespace stalecert::net
