#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "stalecert/util/error.hpp"

namespace stalecert::net {

/// Failures of the transport layer itself (socket setup, bind, malformed
/// client usage). Protocol-level problems from peers never throw — they
/// become 4xx responses (server side) or retries/nullopt (client side).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net: " + what) {}
};

/// A client-side deadline expired (connect, send, or read — see
/// HttpClient's timeout parameter). Distinct from NetError so callers
/// can tell "down" (refused, reset) from "slow" (alive but over deadline):
/// stalecert_query exits 3 for the former, 4 for the latter, and
/// staled-router counts the two against a shard differently.
class NetTimeoutError : public NetError {
 public:
  explicit NetTimeoutError(const std::string& what)
      : NetError("timeout: " + what) {}
};

/// A parsed HTTP/1.1 request. The serving subset is deliberately minimal:
/// GET/HEAD/POST, bodies sized by Content-Length only (no chunked
/// encoding), no multi-line headers.
struct HttpRequest {
  std::string method;                       // "GET", "HEAD", "POST", ...
  std::string target;                       // raw request target
  std::string path;                         // percent-decoded path component
  std::map<std::string, std::string> query; // decoded query parameters
  std::map<std::string, std::string> headers;  // lowercased field names
  std::string version;                      // "HTTP/1.1"
  /// Request body, exactly Content-Length bytes (empty when absent). The
  /// server always drains the body — even for requests it rejects —
  /// so a keep-alive connection never reads stale bytes as the next head.
  std::string body;
  /// Wall-clock the server spent parsing this head (zero when the request
  /// was constructed directly, e.g. in tests). Feeds the request trace.
  std::chrono::nanoseconds parse_duration{0};

  /// Query parameter by name; nullopt when absent.
  [[nodiscard]] std::optional<std::string> param(const std::string& name) const;
  /// Connection persistence per RFC 9112: HTTP/1.1 defaults to keep-alive
  /// unless "Connection: close"; anything else defaults to close.
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. Retry-After on 503), serialized after
  /// the standard Content-Type/Content-Length/Connection set. Names are
  /// emitted as stored; values must already be legal header text.
  std::map<std::string, std::string> headers;
  /// Id of the request trace this response belongs to (0 = untraced). Set
  /// by StaledService so the server's post-write hook can attribute the
  /// socket write time back to the retained trace. Never serialized.
  std::uint64_t trace_id = 0;
};

/// Percent-decodes a URL component ('+' is NOT treated as space — targets
/// here are paths and RFC 3986 query values). Malformed escapes are kept
/// verbatim rather than rejected.
std::string percent_decode(std::string_view text);

/// Parses one request head (everything through the blank line; `raw` must
/// not include a body). Returns nullopt on any syntax violation.
std::optional<HttpRequest> parse_request(std::string_view raw);

/// Serializes a response with Content-Length and Connection headers.
/// `head_only` (HEAD requests) omits the body but keeps its length.
std::string serialize_response(const HttpResponse& response, bool keep_alive,
                               bool head_only = false);

/// Reason phrase for the handful of status codes the service emits.
std::string_view status_text(int status);

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view text);

}  // namespace stalecert::net
