#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/net/event_loop.hpp"

namespace stalecert::net {

/// Multi-reactor TCP accept engine: one blocking accept thread feeding N
/// reactor threads (one EventLoop each) round-robin. start() binds,
/// listens and spawns everything; unlisten() stops admitting connections
/// (shutting the listen socket down wakes the accept thread) while the
/// reactors keep running so in-flight connections can drain; join() then
/// waits for every reactor loop to stop — the owner decides when by
/// calling loop.stop() (typically once its last connection closed).
class Listener {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read the outcome from port().
    std::uint16_t port = 0;
    /// Reactor thread count (0 is promoted to 1).
    unsigned threads = 4;
  };

  /// Runs on the reactor thread that owns the new connection; `fd` is
  /// already nonblocking with TCP_NODELAY set.
  using AcceptHandler =
      std::function<void(EventLoop& loop, unsigned loop_index, int fd)>;

  Listener(Options options, AcceptHandler on_accept);
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  /// Force-stops the loops and joins if the owner did not.
  ~Listener();

  /// Binds, listens, spawns the reactors and the accept thread. Throws
  /// NetError when the address cannot be bound.
  void start();

  /// The bound port (useful with Options::port == 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] unsigned reactor_count() const {
    return static_cast<unsigned>(reactors_.size());
  }
  [[nodiscard]] EventLoop& loop(unsigned index) { return reactors_[index]->loop; }

  /// Stops admitting connections and joins the accept thread. Reactors
  /// keep running. Idempotent.
  void unlisten();
  /// Joins the reactor threads; each loop must have been stopped (a
  /// drained owner calls loop.stop(), or force_stop() does it wholesale).
  void join();
  /// unlisten() + stop every loop + join(): the non-graceful teardown.
  void force_stop();

 private:
  struct Reactor {
    EventLoop loop;
    std::thread thread;
  };

  void accept_loop();

  Options options_;
  AcceptHandler on_accept_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::thread accept_thread_;
};

}  // namespace stalecert::net
