#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stalecert/net/http.hpp"
#include "stalecert/net/listener.hpp"

namespace stalecert::net {

/// HTTP/1.1 server on the epoll reactor: a net::Listener accepts into N
/// reactor threads, each connection is a nonblocking state machine
/// (incremental Http1RequestCodec parse -> handler -> queued write with
/// partial-write continuation), persistent connections per RFC 9112
/// defaults, and graceful drain on stop(): no new connections are
/// admitted, queued responses flush, and every reactor exits once its
/// last connection closed.
///
/// Two read deadlines defend the reactors: a connection that has sent
/// part of a request but not finished it within `header_timeout` gets
/// 408 + close (the slowloris guard), and a keep-alive connection idle
/// longer than `idle_timeout` is closed silently.
///
/// The handler runs on whichever reactor thread owns the connection, so
/// it must be thread-safe; it must also not block for long — a stalled
/// handler stalls every connection on that reactor.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Optional post-write observability hook: invoked on the reactor thread
  /// once the response bytes went out, with the wall-clock the socket
  /// write took (queue to final byte accepted). Must be thread-safe.
  using RequestHook = std::function<void(
      const HttpRequest&, const HttpResponse&, std::chrono::nanoseconds)>;

  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read the outcome from port().
    std::uint16_t port = 0;
    unsigned threads = 4;
    /// Upper bound on one request head; longer heads get 400 + close.
    std::size_t max_request_bytes = 64 * 1024;
    /// Slowloris guard: a request begun but not fully received within
    /// this window gets 408 + close. 0 disables.
    std::chrono::milliseconds header_timeout{10'000};
    /// Keep-alive connections idle longer than this are closed silently.
    /// 0 disables.
    std::chrono::milliseconds idle_timeout{120'000};
  };

  HttpServer(Options options, Handler handler);
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  /// Stops the server if still running.
  ~HttpServer();

  /// Binds, listens, and spawns the reactors. Throws NetError when the
  /// address cannot be bound.
  void start();

  /// Installs the post-write hook. Call before start(); the hook runs
  /// concurrently on every reactor thread.
  void set_request_hook(RequestHook hook) { request_hook_ = std::move(hook); }

  /// The bound port (useful with Options::port == 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Total requests served so far (all reactors).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }

  /// Graceful drain: stop accepting, flush in-flight responses, join the
  /// reactors. Idempotent.
  void stop();

 private:
  struct Connection;
  /// Per-reactor connection table, touched only on its loop thread — the
  /// request path takes no locks at all.
  struct Reactor {
    std::unordered_map<int, std::unique_ptr<Connection>> connections;
  };

  void on_accept(EventLoop& loop, unsigned loop_index, int fd);
  void on_io(EventLoop& loop, unsigned loop_index, int fd,
             std::uint32_t events);
  void do_read(EventLoop& loop, unsigned loop_index, int fd);
  void process(EventLoop& loop, unsigned loop_index, Connection& connection);
  bool write_some(EventLoop& loop, unsigned loop_index,
                  Connection& connection);
  void finish_exchange(Connection& connection);
  void arm_read_deadline(EventLoop& loop, unsigned loop_index,
                         Connection& connection);
  void on_header_timeout(EventLoop& loop, unsigned loop_index, int fd);
  void on_idle_timeout(EventLoop& loop, unsigned loop_index, int fd);
  void close_connection(EventLoop& loop, unsigned loop_index, int fd);
  void drain_reactor(EventLoop& loop, unsigned loop_index);

  Options options_;
  Handler handler_;
  RequestHook request_hook_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace stalecert::net
