#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "stalecert/net/http.hpp"

namespace stalecert::net {

/// Incremental HTTP/1.1 request codec (server side): feed bytes as they
/// arrive off the wire, take one parsed request at a time. The framing
/// rules are exactly the serving subset: a request head terminated by
/// CRLFCRLF and bounded by `max_request_bytes`, bodies sized by
/// Content-Length only (also bounded), no chunked encoding. One codec per
/// connection; take_request() re-arms it for the next keep-alive (possibly
/// pipelined) request, preserving any bytes already buffered beyond the
/// current message.
class Http1RequestCodec {
 public:
  enum class State {
    kHead,      // waiting for (more of) a request head
    kBody,      // head parsed, waiting for Content-Length body bytes
    kComplete,  // a full request is ready — call take_request()
    kError,     // protocol violation — send error_response() and close
  };

  explicit Http1RequestCodec(std::size_t max_request_bytes);

  /// Appends bytes and advances the parse as far as they allow. Feeding an
  /// empty view just re-runs the state machine (useful after take_request
  /// when pipelined bytes may already complete the next message).
  State consume(std::string_view bytes);

  [[nodiscard]] State state() const { return state_; }

  /// True while not a single byte of the next request has been buffered —
  /// the keep-alive idle state. The distinction drives the server's two
  /// deadlines: idle connections get the (long) idle timeout, connections
  /// with a partial head get the (short) slowloris header timeout.
  [[nodiscard]] bool idle() const {
    return state_ == State::kHead && buffer_.empty();
  }

  /// kComplete only: moves the parsed request out (body attached,
  /// parse_duration filled) and re-arms for the next message. state()
  /// afterwards already reflects any pipelined leftover — callers loop
  /// while it is kComplete again.
  HttpRequest take_request();

  /// kError only: the 400 response the server must write before closing.
  [[nodiscard]] const HttpResponse& error_response() const { return error_; }

 private:
  State advance();
  State fail(std::string reason);

  std::size_t max_request_bytes_;
  std::string buffer_;
  std::size_t scanned_ = 0;  // CRLFCRLF search resumes here, never rescans
  State state_ = State::kHead;
  std::optional<HttpRequest> request_;
  std::size_t content_length_ = 0;
  HttpResponse error_;
};

/// Incremental HTTP/1.1 response codec (client side): a status line and
/// headers, then exactly Content-Length body bytes. A response to a HEAD
/// request advertises a Content-Length but carries no body; tell the codec
/// with `head_only`.
class Http1ResponseCodec {
 public:
  enum class State {
    kHead,      // waiting for (more of) the response head
    kBody,      // head parsed, waiting for Content-Length body bytes
    kComplete,  // a full response is ready — call take_response()
    kError,     // unparseable status line — abandon the connection
  };

  struct Response {
    int status = 0;
    std::string content_type;
    std::string body;
    /// Server sent "Connection: close": this connection is spent and must
    /// not go back into a keep-alive pool.
    bool close = false;
  };

  explicit Http1ResponseCodec(bool head_only = false);

  State consume(std::string_view bytes);
  [[nodiscard]] State state() const { return state_; }

  /// kComplete only: moves the response out and re-arms for the next
  /// response on the same keep-alive connection.
  Response take_response(bool next_head_only = false);

 private:
  State advance();

  bool head_only_;
  std::string buffer_;
  std::size_t scanned_ = 0;
  State state_ = State::kHead;
  Response response_;
  std::size_t content_length_ = 0;
};

}  // namespace stalecert::net
