#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "stalecert/net/timer_wheel.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::net {

/// A single-threaded epoll reactor: level-triggered fd callbacks,
/// timer-wheel deadlines, and a thread-safe post() queue backed by an
/// eventfd wakeup. Everything except post() and stop() must be called on
/// the loop thread (the thread inside run()); connections owned by a loop
/// are only ever touched there, which is what keeps the HTTP server
/// lock-free on the request path.
class EventLoop {
 public:
  /// Interest/event bits. Errors and hangups are folded into kReadable so
  /// the callback's next read observes the EOF or ECONNRESET directly.
  static constexpr std::uint32_t kReadable = 0x1;
  static constexpr std::uint32_t kWritable = 0x2;

  using IoCallback = std::function<void(std::uint32_t events)>;

  /// Throws NetError when the kernel refuses the epoll or eventfd.
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// Registers `fd` (level-triggered). The callback runs on the loop
  /// thread and may remove or re-register any fd, including its own.
  void add_fd(int fd, std::uint32_t interest, IoCallback callback);
  void set_interest(int fd, std::uint32_t interest);
  /// Deregisters without closing; the caller owns the fd.
  void remove_fd(int fd);

  /// One-shot timer `delay` from now; fires on the loop thread. Precision
  /// is one wheel tick (a few ms). Returns an id for cancel_timer.
  std::uint64_t add_timer(std::chrono::milliseconds delay,
                          std::function<void()> callback);
  void cancel_timer(std::uint64_t id);

  /// Thread-safe: queues `task` to run on the loop thread and wakes it.
  void post(std::function<void()> task);

  /// Runs until stop(). The calling thread becomes the loop thread.
  void run();
  /// Thread-safe: run() returns after finishing the current dispatch round.
  void stop();
  [[nodiscard]] bool stopped() const {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  void wake();
  void update_epoll(int fd, std::uint32_t interest, bool add);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  TimerWheel wheel_;
  /// shared_ptr so a dispatch round survives a callback removing (or
  /// replacing) the very entry being invoked.
  std::unordered_map<int, std::shared_ptr<IoCallback>> callbacks_;
  util::Mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_ GUARDED_BY(tasks_mutex_);
};

}  // namespace stalecert::net
