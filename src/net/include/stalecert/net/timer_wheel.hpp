#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace stalecert::net {

/// Hashed timing wheel: deadlines hash into `slots` buckets of `tick`
/// granularity; advance() sweeps only the slots the clock has passed and
/// fires the entries whose deadline arrived (entries hashed into a swept
/// slot from a later revolution stay put for the next pass). add, cancel
/// and the per-entry work in advance are O(1); firing precision is one
/// tick. Deliberately single-threaded: every EventLoop owns one wheel and
/// touches it only from its loop thread.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(Clock::time_point now,
                      std::chrono::milliseconds tick = std::chrono::milliseconds(4),
                      std::size_t slots = 512);

  /// Registers `callback` to fire once `deadline` passes. Deadlines already
  /// in the past fire on the next advance(). Returns a non-zero id.
  std::uint64_t add(Clock::time_point deadline, std::function<void()> callback);

  /// True when the id was still pending (not yet fired or cancelled).
  bool cancel(std::uint64_t id);

  /// Fires every timer whose deadline is <= now; returns how many fired.
  /// Callbacks may add or cancel timers re-entrantly.
  std::size_t advance(Clock::time_point now);

  [[nodiscard]] std::size_t pending() const { return index_.size(); }

  /// How long a run loop may sleep without firing anything late: time to
  /// the earliest pending deadline (never less than one tick — that is the
  /// wheel's precision anyway), nullopt when the wheel is empty.
  [[nodiscard]] std::optional<std::chrono::milliseconds> max_sleep(
      Clock::time_point now) const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    Clock::time_point deadline;
    std::function<void()> callback;
  };
  using Slot = std::list<Entry>;

  [[nodiscard]] std::uint64_t tick_of(Clock::time_point t) const;

  std::chrono::milliseconds tick_;
  std::size_t slots_;
  Clock::time_point epoch_;
  std::uint64_t cursor_;  // ticks since epoch_ already swept
  std::uint64_t next_id_ = 1;
  std::vector<Slot> wheel_;
  std::unordered_map<std::uint64_t, std::pair<std::size_t, Slot::iterator>>
      index_;
  /// Lower bound on the earliest pending deadline (exact after add,
  /// refreshed lazily in max_sleep once it goes stale).
  mutable std::optional<Clock::time_point> soonest_;
  /// Ids collected as due in the current advance() but not yet fired;
  /// cancel() removes from here too, so a callback cancelling a sibling
  /// timer due in the same sweep really does suppress it.
  std::unordered_set<std::uint64_t> firing_;
};

}  // namespace stalecert::net
