#include "stalecert/net/codec.hpp"

#include <cstdlib>

#include "stalecert/util/strings.hpp"

namespace stalecert::net {

namespace {

/// Where to resume the CRLFCRLF scan after a miss: the terminator may
/// straddle the next read, so back up three bytes from the buffer end.
std::size_t resume_point(const std::string& buffer) {
  return buffer.size() > 3 ? buffer.size() - 3 : 0;
}

}  // namespace

// --- Request side ---------------------------------------------------------

Http1RequestCodec::Http1RequestCodec(std::size_t max_request_bytes)
    : max_request_bytes_(max_request_bytes) {}

Http1RequestCodec::State Http1RequestCodec::consume(std::string_view bytes) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  buffer_.append(bytes.data(), bytes.size());
  return advance();
}

Http1RequestCodec::State Http1RequestCodec::fail(std::string reason) {
  error_ = HttpResponse{400, "text/plain", std::move(reason), {}, 0};
  state_ = State::kError;
  return state_;
}

Http1RequestCodec::State Http1RequestCodec::advance() {
  if (state_ == State::kHead) {
    const std::size_t head_end = buffer_.find("\r\n\r\n", scanned_);
    if (head_end == std::string::npos) {
      // Too large whether the terminator never comes or the head that did
      // arrive already blows the limit.
      if (buffer_.size() > max_request_bytes_) {
        return fail("request too large\n");
      }
      scanned_ = resume_point(buffer_);
      return state_;
    }
    if (head_end + 4 > max_request_bytes_) return fail("request too large\n");

    const auto parse_start = std::chrono::steady_clock::now();
    request_ = parse_request(
        std::string_view(buffer_).substr(0, head_end + 4));
    if (!request_) return fail("malformed request\n");
    request_->parse_duration = std::chrono::steady_clock::now() - parse_start;
    buffer_.erase(0, head_end + 4);
    scanned_ = 0;

    // Body framing is Content-Length only; bound it like the head so a
    // client cannot make the server buffer arbitrary bytes.
    content_length_ = 0;
    if (const auto it = request_->headers.find("content-length");
        it != request_->headers.end()) {
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(it->second.c_str(), &end, 10);
      if (end == it->second.c_str() || *end != '\0' ||
          parsed > max_request_bytes_) {
        return fail("bad or oversized content-length\n");
      }
      content_length_ = static_cast<std::size_t>(parsed);
    }
    state_ = State::kBody;
  }

  if (state_ == State::kBody && buffer_.size() >= content_length_) {
    request_->body = buffer_.substr(0, content_length_);
    buffer_.erase(0, content_length_);
    state_ = State::kComplete;
  }
  return state_;
}

HttpRequest Http1RequestCodec::take_request() {
  HttpRequest request = *std::move(request_);
  request_.reset();
  content_length_ = 0;
  state_ = State::kHead;
  scanned_ = 0;
  advance();  // pipelined leftover may already complete the next message
  return request;
}

// --- Response side --------------------------------------------------------

Http1ResponseCodec::Http1ResponseCodec(bool head_only)
    : head_only_(head_only) {}

Http1ResponseCodec::State Http1ResponseCodec::consume(std::string_view bytes) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  buffer_.append(bytes.data(), bytes.size());
  return advance();
}

Http1ResponseCodec::State Http1ResponseCodec::advance() {
  if (state_ == State::kHead) {
    const std::size_t head_end = buffer_.find("\r\n\r\n", scanned_);
    if (head_end == std::string::npos) {
      scanned_ = resume_point(buffer_);
      return state_;
    }
    const std::string head = buffer_.substr(0, head_end);
    const auto lines = util::split(head, '\n');
    // Status line: "HTTP/1.1 200 OK".
    const auto parts = util::split(std::string(util::trim(lines.empty() ? "" : lines[0])), ' ');
    if (parts.size() < 2 || parts[0].rfind("HTTP/", 0) != 0 ||
        parts[1].empty() ||
        parts[1].find_first_not_of("0123456789") != std::string::npos) {
      state_ = State::kError;
      return state_;
    }
    response_.status = std::atoi(parts[1].c_str());
    content_length_ = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string line(util::trim(lines[i]));
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      const std::string name = util::to_lower(line.substr(0, colon));
      const std::string value(util::trim(line.substr(colon + 1)));
      if (name == "content-length") {
        content_length_ = static_cast<std::size_t>(std::atoll(value.c_str()));
      } else if (name == "content-type") {
        response_.content_type = value;
      } else if (name == "connection" && util::to_lower(value) == "close") {
        response_.close = true;
      }
    }
    if (head_only_) content_length_ = 0;
    buffer_.erase(0, head_end + 4);
    scanned_ = 0;
    state_ = State::kBody;
  }

  if (state_ == State::kBody && buffer_.size() >= content_length_) {
    response_.body = buffer_.substr(0, content_length_);
    buffer_.erase(0, content_length_);
    state_ = State::kComplete;
  }
  return state_;
}

Http1ResponseCodec::Response Http1ResponseCodec::take_response(
    bool next_head_only) {
  Response response = std::move(response_);
  response_ = Response{};
  head_only_ = next_head_only;
  content_length_ = 0;
  state_ = State::kHead;
  scanned_ = 0;
  advance();
  return response;
}

}  // namespace stalecert::net
