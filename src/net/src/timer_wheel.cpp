#include "stalecert/net/timer_wheel.hpp"

#include <algorithm>

namespace stalecert::net {

TimerWheel::TimerWheel(Clock::time_point now, std::chrono::milliseconds tick,
                       std::size_t slots)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      slots_(slots == 0 ? 1 : slots),
      epoch_(now),
      cursor_(0),
      wheel_(slots_) {}

std::uint64_t TimerWheel::tick_of(Clock::time_point t) const {
  if (t <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(t - epoch_) /
      tick_);
}

std::uint64_t TimerWheel::add(Clock::time_point deadline,
                              std::function<void()> callback) {
  const std::uint64_t id = next_id_++;
  // An entry hashed into an already-swept tick would wait a whole
  // revolution; pull it forward to the next sweep (it still fires only
  // once its deadline has passed — at worst one tick late).
  std::uint64_t tick = tick_of(deadline);
  if (tick <= cursor_) tick = cursor_ + 1;
  const std::size_t slot = tick % slots_;
  wheel_[slot].push_front(Entry{id, deadline, std::move(callback)});
  index_[id] = {slot, wheel_[slot].begin()};
  if (!soonest_ || deadline < *soonest_) soonest_ = deadline;
  return id;
}

bool TimerWheel::cancel(std::uint64_t id) {
  // An id advance() has already swept into its dispatch batch is no longer
  // in the index, but it has not fired yet — pulling it out of firing_
  // suppresses the callback.
  if (firing_.erase(id) > 0) return true;
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  wheel_[it->second.first].erase(it->second.second);
  index_.erase(it);
  return true;
}

std::size_t TimerWheel::advance(Clock::time_point now) {
  const std::uint64_t target = tick_of(now);
  if (target <= cursor_) return 0;
  // A gap longer than one revolution still only needs each slot swept once.
  const std::uint64_t sweep =
      std::min<std::uint64_t>(target - cursor_, slots_);
  std::vector<std::pair<std::uint64_t, std::function<void()>>> due;
  for (std::uint64_t k = 1; k <= sweep; ++k) {
    Slot& slot = wheel_[(cursor_ + k) % slots_];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline <= now) {
        due.emplace_back(it->id, std::move(it->callback));
        firing_.insert(it->id);
        index_.erase(it->id);
        it = slot.erase(it);
      } else {
        ++it;  // same slot, a later revolution
      }
    }
  }
  cursor_ = target;
  if (soonest_ && *soonest_ <= now) soonest_.reset();
  // Fire after the sweep: callbacks may re-enter add()/cancel() freely —
  // including cancelling a sibling entry still waiting in this batch.
  std::size_t fired = 0;
  for (auto& [id, callback] : due) {
    if (firing_.erase(id) == 0) continue;  // cancelled by an earlier callback
    callback();
    ++fired;
  }
  firing_.clear();
  return fired;
}

std::optional<std::chrono::milliseconds> TimerWheel::max_sleep(
    Clock::time_point now) const {
  if (index_.empty()) return std::nullopt;
  if (!soonest_) {
    Clock::time_point best = Clock::time_point::max();
    for (const auto& [id, where] : index_) {
      best = std::min(best, where.second->deadline);
    }
    soonest_ = best;
  }
  if (*soonest_ <= now) return tick_;
  return std::max(
      std::chrono::duration_cast<std::chrono::milliseconds>(*soonest_ - now),
      tick_);
}

}  // namespace stalecert::net
