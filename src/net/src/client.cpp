#include "stalecert/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "stalecert/net/codec.hpp"

namespace stalecert::net {

namespace {

enum class IoResult { kOk, kClosed, kTimedOut };

IoResult send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // EAGAIN from a blocking socket means SO_SNDTIMEO expired.
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return IoResult::kTimedOut;
      }
      return IoResult::kClosed;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

}  // namespace

HttpClient::HttpClient(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(host), port_(port), timeout_(timeout) {
  connect();
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_(other.timeout_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

HttpClient::~HttpClient() { close(); }

void HttpClient::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw NetError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close();
    throw NetError("bad host address " + host_ + " (want an IPv4 literal)");
  }
  const std::string peer = host_ + ":" + std::to_string(port_);
  if (timeout_.count() <= 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw NetError("connect " + peer + ": " + detail);
    }
    return;
  }

  // Deadline-bounded connect: non-blocking connect + poll, then restore
  // blocking mode with SO_RCVTIMEO/SO_SNDTIMEO bounding every exchange.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      const std::string detail = std::strerror(errno);
      close();
      throw NetError("connect " + peer + ": " + detail);
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_.count()));
    if (ready == 0) {
      close();
      throw NetTimeoutError("connect " + peer + " after " +
                            std::to_string(timeout_.count()) + "ms");
    }
    if (ready < 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw NetError("poll " + peer + ": " + detail);
    }
    int error = 0;
    socklen_t len = sizeof error;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      close();
      throw NetError("connect " + peer + ": " + std::strerror(error));
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<HttpClient::Result> HttpClient::try_request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nConnection: keep-alive\r\n";
  if (!body.empty()) {
    request += "Content-Type: " + content_type +
               "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  // Timeouts THROW instead of returning nullopt: nullopt triggers the
  // reconnect-retry in request(), which is right for a closed keep-alive
  // connection but wrong for a slow server (retrying doubles the wait and
  // masks the condition the caller asked to detect).
  const auto timed_out = [&](const char* op) {
    return NetTimeoutError(std::string(op) + " " + host_ + ":" +
                           std::to_string(port_) + " after " +
                           std::to_string(timeout_.count()) + "ms");
  };
  switch (send_all(fd_, request)) {
    case IoResult::kOk: break;
    case IoResult::kTimedOut: throw timed_out("send");
    case IoResult::kClosed: return std::nullopt;
  }

  // The shared response codec frames the reply: head, then exactly
  // Content-Length body bytes (none after a HEAD).
  Http1ResponseCodec codec(method == "HEAD");
  while (codec.state() != Http1ResponseCodec::State::kComplete) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          timeout_.count() > 0) {
        throw timed_out("recv");
      }
      return std::nullopt;
    }
    if (codec.consume(std::string_view(chunk, static_cast<std::size_t>(n))) ==
        Http1ResponseCodec::State::kError) {
      return std::nullopt;  // unparseable head: treat like a dead connection
    }
  }

  const auto response = codec.take_response();
  Result result{response.status, response.content_type, response.body};
  if (response.close) close();
  return result;
}

HttpClient::Result HttpClient::get(const std::string& target) {
  return request("GET", target);
}

HttpClient::Result HttpClient::request(const std::string& method,
                                       const std::string& target,
                                       const std::string& body,
                                       const std::string& content_type) {
  if (fd_ < 0) connect();
  if (auto result = try_request(method, target, body, content_type)) {
    return *std::move(result);
  }
  // The server may have closed an idle keep-alive connection; retry once
  // on a fresh connection before giving up.
  connect();
  if (auto result = try_request(method, target, body, content_type)) {
    return *std::move(result);
  }
  throw NetError(method + " " + target + " failed after reconnect");
}

HttpClient::Result http_get(const std::string& host, std::uint16_t port,
                            const std::string& target) {
  HttpClient client(host, port);
  return client.get(target);
}

}  // namespace stalecert::net
