#include "stalecert/net/http.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "stalecert/util/strings.hpp"

namespace stalecert::net {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> HttpRequest::param(const std::string& name) const {
  const auto it = query.find(name);
  if (it == query.end()) return std::nullopt;
  return it->second;
}

bool HttpRequest::keep_alive() const {
  const auto it = headers.find("connection");
  if (it != headers.end()) {
    const std::string value = util::to_lower(it->second);
    if (value == "close") return false;
    if (value == "keep-alive") return true;
  }
  return version == "HTTP/1.1";
}

std::string percent_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = hex_value(text[i + 1]);
      const int lo = hex_value(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i]);
  }
  return out;
}

std::optional<HttpRequest> parse_request(std::string_view raw) {
  HttpRequest request;

  const auto line_end = raw.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const std::string_view request_line = raw.substr(0, line_end);

  const auto method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) return std::nullopt;
  const auto target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return std::nullopt;
  request.method = std::string(request_line.substr(0, method_end));
  request.target =
      std::string(request_line.substr(method_end + 1, target_end - method_end - 1));
  request.version = std::string(request_line.substr(target_end + 1));
  if (request.method.empty() || request.target.empty() ||
      !util::starts_with(request.version, "HTTP/")) {
    return std::nullopt;
  }

  // Split the target into path and query string.
  std::string_view target = request.target;
  std::string_view query_string;
  if (const auto q = target.find('?'); q != std::string_view::npos) {
    query_string = target.substr(q + 1);
    target = target.substr(0, q);
  }
  request.path = percent_decode(target);
  if (!util::starts_with(request.path, "/")) return std::nullopt;
  if (!query_string.empty()) {
    for (const auto& pair : util::split(query_string, '&')) {
      if (pair.empty()) continue;
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[percent_decode(pair)] = "";
      } else {
        request.query[percent_decode(pair.substr(0, eq))] =
            percent_decode(pair.substr(eq + 1));
      }
    }
  }

  // Header fields, one per line, until the blank line.
  std::size_t pos = line_end + 2;
  while (pos < raw.size()) {
    const auto next = raw.find("\r\n", pos);
    if (next == std::string_view::npos) return std::nullopt;
    const std::string_view line = raw.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) break;  // end of head
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    const std::string name = util::to_lower(line.substr(0, colon));
    request.headers[name] = std::string(util::trim(line.substr(colon + 1)));
  }
  return request;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response, bool keep_alive,
                               bool head_only) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << status_text(response.status)
      << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : response.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n";
  if (!head_only) out << response.body;
  return out.str();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace stalecert::net
