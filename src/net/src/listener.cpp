#include "stalecert/net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "stalecert/net/http.hpp"

namespace stalecert::net {

Listener::Listener(Options options, AcceptHandler on_accept)
    : options_(std::move(options)), on_accept_(std::move(on_accept)) {}

Listener::~Listener() { force_stop(); }

void Listener::start() {
  if (listen_fd_ >= 0 || !reactors_.empty()) {
    throw NetError("listener already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw NetError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError("bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError("bind " + options_.bind_address + ":" +
                   std::to_string(options_.port) + ": " + detail);
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError("listen: " + detail);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  const unsigned threads = options_.threads == 0 ? 1 : options_.threads;
  reactors_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
  }
  for (auto& reactor : reactors_) {
    reactor->thread = std::thread([loop = &reactor->loop] { loop->run(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Listener::accept_loop() {
  unsigned next = 0;
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EBADF / EINVAL after unlisten() shut the socket down: exit.
      break;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    const unsigned index = next;
    next = (next + 1) % reactors_.size();
    EventLoop& loop = reactors_[index]->loop;
    loop.post([this, &loop, index, fd] { on_accept_(loop, index, fd); });
  }
}

void Listener::unlisten() {
  if (accept_thread_.joinable()) {
    // Waking the blocked accept(2) with shutdown is the proven drain
    // pattern; close() alone would leave the thread parked.
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Listener::join() {
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  reactors_.clear();
}

void Listener::force_stop() {
  unlisten();
  for (auto& reactor : reactors_) reactor->loop.stop();
  join();
}

}  // namespace stalecert::net
