#include "stalecert/net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "stalecert/net/codec.hpp"

namespace stalecert::net {

namespace {

enum class DeadlineKind { kNone, kIdle, kHeader };

}  // namespace

/// Per-connection state machine; lives in its reactor's table and is only
/// ever touched on that loop thread.
struct HttpServer::Connection {
  Connection(int fd_in, std::size_t max_request_bytes)
      : fd(fd_in), codec(max_request_bytes) {}

  int fd;
  Http1RequestCodec codec;
  std::string out;            // serialized response bytes still to write
  std::size_t out_offset = 0;
  bool writing = false;       // partial write parked on EPOLLOUT
  bool close_after_write = false;
  /// The exchange the post-write hook reports once `out` flushed; protocol
  /// error responses (400/408) have no parsed request and set no exchange.
  bool have_exchange = false;
  HttpRequest request;
  HttpResponse response;
  std::chrono::steady_clock::time_point write_start;
  std::uint64_t timer = 0;  // active wheel timer (0 = none)
  DeadlineKind deadline = DeadlineKind::kNone;
};

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) throw NetError("server already started");

  draining_.store(false, std::memory_order_release);
  const unsigned threads = options_.threads == 0 ? 1 : options_.threads;
  reactors_.clear();
  for (unsigned i = 0; i < threads; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
  }
  listener_ = std::make_unique<Listener>(
      Listener::Options{options_.bind_address, options_.port, threads},
      [this](EventLoop& loop, unsigned index, int fd) {
        on_accept(loop, index, fd);
      });
  try {
    listener_->start();
  } catch (...) {
    listener_.reset();
    reactors_.clear();
    throw;
  }
  port_ = listener_->port();
  running_.store(true);
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  draining_.store(true, std::memory_order_release);
  // No new connections; the accept thread exits before the drain orders
  // go out, so each reactor's order is the last task it receives.
  listener_->unlisten();
  for (unsigned k = 0; k < listener_->reactor_count(); ++k) {
    EventLoop& loop = listener_->loop(k);
    loop.post([this, &loop, k] { drain_reactor(loop, k); });
  }
  listener_->join();
  listener_.reset();
  reactors_.clear();
}

void HttpServer::on_accept(EventLoop& loop, unsigned loop_index, int fd) {
  if (draining_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  auto connection =
      std::make_unique<Connection>(fd, options_.max_request_bytes);
  Connection& ref = *connection;
  reactors_[loop_index]->connections.emplace(fd, std::move(connection));
  loop.add_fd(fd, EventLoop::kReadable,
              [this, &loop, loop_index, fd](std::uint32_t events) {
                on_io(loop, loop_index, fd, events);
              });
  arm_read_deadline(loop, loop_index, ref);
}

void HttpServer::on_io(EventLoop& loop, unsigned loop_index, int fd,
                       std::uint32_t events) {
  auto& connections = reactors_[loop_index]->connections;
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& connection = *it->second;
  if ((events & EventLoop::kWritable) != 0 && connection.writing) {
    if (!write_some(loop, loop_index, connection)) return;
    // Flushed: pipelined requests already buffered in the codec are due.
    if (!connection.writing) process(loop, loop_index, connection);
    // process may have closed the connection; re-check before reading.
    if (connections.find(fd) == connections.end()) return;
  }
  if ((events & EventLoop::kReadable) != 0) do_read(loop, loop_index, fd);
}

void HttpServer::do_read(EventLoop& loop, unsigned loop_index, int fd) {
  auto& connections = reactors_[loop_index]->connections;
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& connection = *it->second;
  // While a response is pending the read interest is off; a stray
  // readable event (error fold-in) waits until the write path settles.
  if (connection.writing) return;

  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      const auto state = connection.codec.consume(
          std::string_view(chunk, static_cast<std::size_t>(n)));
      // Stop pulling bytes once a full message (or a violation) is in
      // hand: the response is served first, and level-triggered epoll
      // re-delivers whatever is still queued in the kernel.
      if (state == Http1RequestCodec::State::kComplete ||
          state == Http1RequestCodec::State::kError) {
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or reset between requests (or mid-head/mid-body): no response
    // owed; drop the connection.
    close_connection(loop, loop_index, fd);
    return;
  }
  process(loop, loop_index, connection);
}

void HttpServer::process(EventLoop& loop, unsigned loop_index,
                         Connection& connection) {
  // Serve every already-buffered request back to back (pipelining) until
  // a partial write parks the connection or it closes.
  while (!connection.writing) {
    const auto state = connection.codec.state();
    if (state == Http1RequestCodec::State::kComplete) {
      HttpRequest request = connection.codec.take_request();
      HttpResponse response;
      if (request.method != "GET" && request.method != "HEAD" &&
          request.method != "POST") {
        response = {405, "text/plain", "method not allowed\n", {}, 0};
      } else {
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          response = {500, "text/plain",
                      std::string("internal error: ") + e.what() + "\n",
                      {},
                      0};
        }
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);

      const bool keep = request.keep_alive() &&
                        !draining_.load(std::memory_order_acquire);
      connection.close_after_write = !keep;
      connection.out =
          serialize_response(response, keep, request.method == "HEAD");
      connection.out_offset = 0;
      connection.request = std::move(request);
      connection.response = std::move(response);
      connection.have_exchange = true;
      connection.write_start = std::chrono::steady_clock::now();
      if (!write_some(loop, loop_index, connection)) return;
      continue;
    }
    if (state == Http1RequestCodec::State::kError) {
      connection.out = serialize_response(connection.codec.error_response(),
                                          /*keep_alive=*/false);
      connection.out_offset = 0;
      connection.close_after_write = true;
      connection.have_exchange = false;
      write_some(loop, loop_index, connection);
      return;
    }
    // kHead / kBody: more bytes needed; pick the matching deadline.
    arm_read_deadline(loop, loop_index, connection);
    return;
  }
}

bool HttpServer::write_some(EventLoop& loop, unsigned loop_index,
                            Connection& connection) {
  while (connection.out_offset < connection.out.size()) {
    const ssize_t n = ::send(connection.fd,
                             connection.out.data() + connection.out_offset,
                             connection.out.size() - connection.out_offset,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!connection.writing) {
        connection.writing = true;
        loop.set_interest(connection.fd, EventLoop::kWritable);
      }
      return true;
    }
    if (n <= 0) {
      // Peer reset mid-response. The hook still runs — the blocking
      // server invoked it after a failed send too.
      finish_exchange(connection);
      close_connection(loop, loop_index, connection.fd);
      return false;
    }
    connection.out_offset += static_cast<std::size_t>(n);
  }

  finish_exchange(connection);
  connection.out.clear();
  connection.out_offset = 0;
  if (connection.close_after_write) {
    close_connection(loop, loop_index, connection.fd);
    return false;
  }
  if (connection.writing) {
    connection.writing = false;
    loop.set_interest(connection.fd, EventLoop::kReadable);
  }
  return true;
}

void HttpServer::finish_exchange(Connection& connection) {
  if (!connection.have_exchange) return;
  connection.have_exchange = false;
  if (request_hook_) {
    request_hook_(connection.request, connection.response,
                  std::chrono::steady_clock::now() - connection.write_start);
  }
}

void HttpServer::arm_read_deadline(EventLoop& loop, unsigned loop_index,
                                   Connection& connection) {
  const int fd = connection.fd;
  if (connection.codec.idle()) {
    // Re-arming the idle deadline on each completed exchange is the
    // intended reset; a live keep-alive client never hits it.
    if (connection.timer != 0) loop.cancel_timer(connection.timer);
    connection.timer = 0;
    connection.deadline = DeadlineKind::kNone;
    if (options_.idle_timeout.count() <= 0) return;
    connection.deadline = DeadlineKind::kIdle;
    connection.timer =
        loop.add_timer(options_.idle_timeout, [this, &loop, loop_index, fd] {
          on_idle_timeout(loop, loop_index, fd);
        });
    return;
  }
  // Partial request: the header deadline counts from the FIRST byte and is
  // deliberately NOT reset by further bytes — trickling one byte per
  // second (slowloris) must not push it out.
  if (connection.deadline == DeadlineKind::kHeader) return;
  if (connection.timer != 0) loop.cancel_timer(connection.timer);
  connection.timer = 0;
  connection.deadline = DeadlineKind::kNone;
  if (options_.header_timeout.count() <= 0) return;
  connection.deadline = DeadlineKind::kHeader;
  connection.timer =
      loop.add_timer(options_.header_timeout, [this, &loop, loop_index, fd] {
        on_header_timeout(loop, loop_index, fd);
      });
}

void HttpServer::on_header_timeout(EventLoop& loop, unsigned loop_index,
                                   int fd) {
  auto& connections = reactors_[loop_index]->connections;
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& connection = *it->second;
  connection.timer = 0;
  connection.deadline = DeadlineKind::kNone;
  if (connection.writing) return;  // a response is already on its way out
  connection.out = serialize_response(
      {408, "text/plain", "request header timeout\n", {}, 0},
      /*keep_alive=*/false);
  connection.out_offset = 0;
  connection.close_after_write = true;
  connection.have_exchange = false;
  write_some(loop, loop_index, connection);
}

void HttpServer::on_idle_timeout(EventLoop& loop, unsigned loop_index,
                                 int fd) {
  auto& connections = reactors_[loop_index]->connections;
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  it->second->timer = 0;
  close_connection(loop, loop_index, fd);
}

void HttpServer::close_connection(EventLoop& loop, unsigned loop_index,
                                  int fd) {
  auto& connections = reactors_[loop_index]->connections;
  const auto it = connections.find(fd);
  if (it == connections.end()) return;
  if (it->second->timer != 0) loop.cancel_timer(it->second->timer);
  loop.remove_fd(fd);
  ::close(fd);
  connections.erase(it);
  if (draining_.load(std::memory_order_acquire) && connections.empty()) {
    loop.stop();
  }
}

void HttpServer::drain_reactor(EventLoop& loop, unsigned loop_index) {
  auto& connections = reactors_[loop_index]->connections;
  std::vector<int> fds;
  fds.reserve(connections.size());
  for (const auto& [fd, connection] : connections) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = connections.find(fd);
    if (it == connections.end()) continue;
    Connection& connection = *it->second;
    if (connection.writing) {
      // Queued response bytes still flush; the close follows them out.
      connection.close_after_write = true;
      continue;
    }
    // Idle or mid-request: parity with the blocking server's SHUT_RD
    // drain, where these connections ended without a response.
    close_connection(loop, loop_index, fd);
  }
  if (connections.empty()) loop.stop();
}

}  // namespace stalecert::net
