#include "stalecert/net/fetch.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "stalecert/net/codec.hpp"
#include "stalecert/net/event_loop.hpp"

namespace stalecert::net {

namespace {

/// One in-flight exchange: nonblocking connect -> send -> incremental
/// response parse, with per-attempt deadline and fresh-connection retry.
struct Leg {
  const FetchSpec* spec = nullptr;
  int fd = -1;
  bool registered = false;
  int attempts_left = 0;
  enum class Phase { kConnecting, kSending, kReceiving, kDone };
  Phase phase = Phase::kDone;
  std::string out;
  std::size_t out_offset = 0;
  std::unique_ptr<Http1ResponseCodec> codec;
  std::uint64_t timer = 0;
  std::chrono::steady_clock::time_point started;
  FetchResult result;
};

class Scatter {
 public:
  Scatter(EventLoop& loop, const std::vector<FetchSpec>& specs,
          std::chrono::milliseconds timeout, int attempts)
      : loop_(loop), timeout_(timeout), attempts_(attempts < 1 ? 1 : attempts) {
    legs_.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) legs_[i].spec = &specs[i];
  }

  std::vector<FetchResult> run() {
    remaining_ = legs_.size();
    for (auto& leg : legs_) {
      leg.attempts_left = attempts_;
      leg.started = std::chrono::steady_clock::now();
      begin(leg, /*allow_reuse=*/true);
    }
    if (remaining_ > 0) loop_.run();
    std::vector<FetchResult> results;
    results.reserve(legs_.size());
    for (auto& leg : legs_) results.push_back(std::move(leg.result));
    return results;
  }

 private:
  [[nodiscard]] std::string peer(const Leg& leg) const {
    return leg.spec->host + ":" + std::to_string(leg.spec->port);
  }

  void begin(Leg& leg, bool allow_reuse) {
    leg.out = "GET " + leg.spec->target + " HTTP/1.1\r\nHost: " +
              leg.spec->host + "\r\nConnection: keep-alive\r\n\r\n";
    leg.out_offset = 0;
    leg.codec = std::make_unique<Http1ResponseCodec>();

    if (allow_reuse && leg.spec->reuse_fd >= 0) {
      leg.fd = leg.spec->reuse_fd;
      const int flags = ::fcntl(leg.fd, F_GETFL, 0);
      ::fcntl(leg.fd, F_SETFL, flags | O_NONBLOCK);
      leg.phase = Leg::Phase::kSending;
    } else {
      leg.fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (leg.fd < 0) {
        fail(leg, "socket: " + std::string(std::strerror(errno)), false);
        return;
      }
      const int flags = ::fcntl(leg.fd, F_GETFL, 0);
      ::fcntl(leg.fd, F_SETFL, flags | O_NONBLOCK);
      const int nodelay = 1;
      ::setsockopt(leg.fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                   sizeof(nodelay));

      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(leg.spec->port);
      if (::inet_pton(AF_INET, leg.spec->host.c_str(), &addr.sin_addr) != 1) {
        fail(leg, "bad host address " + leg.spec->host, false);
        return;
      }
      if (::connect(leg.fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) < 0) {
        if (errno != EINPROGRESS) {
          fail(leg, "connect " + peer(leg) + ": " + std::strerror(errno),
               false);
          return;
        }
        leg.phase = Leg::Phase::kConnecting;
      } else {
        leg.phase = Leg::Phase::kSending;
      }
    }

    loop_.add_fd(leg.fd, EventLoop::kWritable,
                 [this, &leg](std::uint32_t events) { on_event(leg, events); });
    leg.registered = true;
    if (timeout_.count() > 0) {
      leg.timer = loop_.add_timer(timeout_, [this, &leg] {
        leg.timer = 0;
        fail(leg,
             "deadline " + peer(leg) + " after " +
                 std::to_string(timeout_.count()) + "ms",
             /*timed_out=*/true);
      });
    }
    // Optimistic immediate write: a pooled or instantly-connected socket is
    // nearly always writable already, so a point lookup skips the initial
    // epoll round trip. EAGAIN just falls back to the registered interest;
    // a dead pooled fd fails here and retries fresh like any other failure.
    if (leg.phase == Leg::Phase::kSending) send_some(leg);
  }

  void on_event(Leg& leg, std::uint32_t events) {
    if (leg.phase == Leg::Phase::kConnecting &&
        (events & EventLoop::kWritable) != 0) {
      int error = 0;
      socklen_t len = sizeof(error);
      ::getsockopt(leg.fd, SOL_SOCKET, SO_ERROR, &error, &len);
      if (error != 0) {
        fail(leg, "connect " + peer(leg) + ": " + std::strerror(error), false);
        return;
      }
      leg.phase = Leg::Phase::kSending;
    }
    if (leg.phase == Leg::Phase::kSending &&
        (events & EventLoop::kWritable) != 0) {
      send_some(leg);
    }
    if (leg.phase == Leg::Phase::kReceiving &&
        (events & EventLoop::kReadable) != 0) {
      read_some(leg);
    }
  }

  void send_some(Leg& leg) {
    while (leg.out_offset < leg.out.size()) {
      const ssize_t n = ::send(leg.fd, leg.out.data() + leg.out_offset,
                               leg.out.size() - leg.out_offset, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n <= 0) {
        fail(leg, "send " + peer(leg) + ": connection closed", false);
        return;
      }
      leg.out_offset += static_cast<std::size_t>(n);
    }
    leg.phase = Leg::Phase::kReceiving;
    loop_.set_interest(leg.fd, EventLoop::kReadable);
  }

  void read_some(Leg& leg) {
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(leg.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        const auto state = leg.codec->consume(
            std::string_view(chunk, static_cast<std::size_t>(n)));
        if (state == Http1ResponseCodec::State::kComplete) {
          succeed(leg);
          return;
        }
        if (state == Http1ResponseCodec::State::kError) {
          fail(leg, "unparseable response from " + peer(leg), false);
          return;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      fail(leg, "recv " + peer(leg) + ": connection closed", false);
      return;
    }
  }

  void succeed(Leg& leg) {
    auto response = leg.codec->take_response();
    leg.result.outcome = FetchResult::Outcome::kOk;
    leg.result.status = response.status;
    leg.result.content_type = std::move(response.content_type);
    leg.result.body = std::move(response.body);
    loop_.remove_fd(leg.fd);
    leg.registered = false;
    if (response.close) {
      ::close(leg.fd);
      leg.result.keep_fd = -1;
    } else {
      leg.result.keep_fd = leg.fd;  // hand back for the caller's pool
    }
    leg.fd = -1;
    finish(leg);
  }

  void fail(Leg& leg, const std::string& reason, bool timed_out) {
    if (leg.registered) {
      loop_.remove_fd(leg.fd);
      leg.registered = false;
    }
    if (leg.fd >= 0) {
      ::close(leg.fd);
      leg.fd = -1;
    }
    if (--leg.attempts_left > 0) {
      // A discarded pooled connection or a flaky first attempt: retry on
      // a brand new connection under a fresh deadline.
      if (leg.timer != 0) loop_.cancel_timer(leg.timer);
      leg.timer = 0;
      begin(leg, /*allow_reuse=*/false);
      return;
    }
    leg.result.outcome = timed_out ? FetchResult::Outcome::kTimeout
                                   : FetchResult::Outcome::kError;
    leg.result.error = reason;
    finish(leg);
  }

  void finish(Leg& leg) {
    if (leg.timer != 0) loop_.cancel_timer(leg.timer);
    leg.timer = 0;
    leg.phase = Leg::Phase::kDone;
    leg.result.elapsed = std::chrono::steady_clock::now() - leg.started;
    if (--remaining_ == 0) loop_.stop();
  }

  EventLoop& loop_;
  std::chrono::milliseconds timeout_;
  int attempts_;
  std::vector<Leg> legs_;
  std::size_t remaining_ = 0;
};

}  // namespace

std::vector<FetchResult> fetch_all(const std::vector<FetchSpec>& specs,
                                   std::chrono::milliseconds timeout,
                                   int attempts) {
  if (specs.empty()) return {};
  // One reactor per calling thread, not per call: the epoll + eventfd
  // setup is measurable at point-lookup rates. Every scatter deregisters
  // all its fds and timers before returning, so the loop carries no state
  // between calls; if one ever unwinds mid-flight, drop the loop rather
  // than risk stale registrations.
  static thread_local std::unique_ptr<EventLoop> loop;
  if (!loop) loop = std::make_unique<EventLoop>();
  try {
    Scatter scatter(*loop, specs, timeout, attempts);
    return scatter.run();
  } catch (...) {
    loop.reset();
    throw;
  }
}

}  // namespace stalecert::net
