#include "stalecert/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "stalecert/net/http.hpp"

namespace stalecert::net {

namespace {

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & EventLoop::kReadable) events |= EPOLLIN;
  if (interest & EventLoop::kWritable) events |= EPOLLOUT;
  return events;
}

std::uint32_t from_epoll(std::uint32_t events) {
  std::uint32_t out = 0;
  // Errors and hangups surface as readability: the callback's recv() sees
  // the EOF or the errno and owns the close decision.
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) {
    out |= EventLoop::kReadable;
  }
  if (events & EPOLLOUT) out |= EventLoop::kWritable;
  // EPOLLERR can arrive on a write-only interest (e.g. a failing connect);
  // make sure the callback still runs.
  if (out == 0 && (events & EPOLLERR) != 0) out |= EventLoop::kWritable;
  return out;
}

}  // namespace

EventLoop::EventLoop() : wheel_(TimerWheel::Clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const std::string detail = std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw NetError("eventfd: " + detail);
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::update_epoll(int fd, std::uint32_t interest, bool add) {
  epoll_event event{};
  event.events = to_epoll(interest) | EPOLLRDHUP;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                  &event) < 0) {
    throw NetError(std::string(add ? "epoll_ctl add: " : "epoll_ctl mod: ") +
                   std::strerror(errno));
  }
}

void EventLoop::add_fd(int fd, std::uint32_t interest, IoCallback callback) {
  update_epoll(fd, interest, /*add=*/true);
  callbacks_[fd] = std::make_shared<IoCallback>(std::move(callback));
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  update_epoll(fd, interest, /*add=*/false);
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

std::uint64_t EventLoop::add_timer(std::chrono::milliseconds delay,
                                   std::function<void()> callback) {
  return wheel_.add(TimerWheel::Clock::now() + delay, std::move(callback));
}

void EventLoop::cancel_timer(std::uint64_t id) { wheel_.cancel(id); }

void EventLoop::post(std::function<void()> task) {
  {
    const util::MutexLock lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the value is irrelevant.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::run() {
  stop_.store(false, std::memory_order_release);
  std::vector<epoll_event> events(64);
  std::vector<std::function<void()>> ready;
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;  // nothing pending: block until an event or wake()
    {
      const util::MutexLock lock(tasks_mutex_);
      if (!tasks_.empty()) timeout_ms = 0;
    }
    if (timeout_ms != 0) {
      if (const auto sleep = wheel_.max_sleep(TimerWheel::Clock::now())) {
        timeout_ms = static_cast<int>(sleep->count());
      }
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;

    // Posted tasks first: they carry new connections and drain orders.
    ready.clear();
    {
      const util::MutexLock lock(tasks_mutex_);
      ready.swap(tasks_);
    }
    for (auto& task : ready) task();

    wheel_.advance(TimerWheel::Clock::now());

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // Look the callback up per event: an earlier callback in this round
      // may have removed this fd (deferred close).
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      const std::shared_ptr<IoCallback> callback = it->second;
      (*callback)(from_epoll(events[i].events));
    }
  }
}

}  // namespace stalecert::net
