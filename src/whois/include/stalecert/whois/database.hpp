#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"
#include "stalecert/whois/record.hpp"

namespace stalecert::whois {

/// A new registration observed via a changed registry creation date — the
/// detector's signal for registrant change (§4.2).
struct NewRegistration {
  std::string domain;
  util::Date creation_date;
  /// Creation date of the previous registration of the same name, if we
  /// observed one (i.e., this is a re-registration, not a first sighting).
  std::optional<util::Date> previous_creation_date;

  bool operator==(const NewRegistration&) const = default;
};

/// Bulk historical WHOIS collection: ingests ThinRecords over time (as an
/// industry-partner feed would deliver them) and exposes the
/// (domain, creation-date) re-registration stream. Restricting by TLD
/// mirrors the paper's .com/.net scope.
class WhoisDatabase {
 public:
  explicit WhoisDatabase(std::vector<std::string> allowed_tlds = {"com", "net"});

  /// Ingests one observed record. Out-of-scope TLDs are dropped. Returns
  /// true if the record was in scope.
  bool ingest(const ThinRecord& record);
  /// Parses and ingests raw WHOIS response text; malformed responses are
  /// counted and skipped (returns false), matching the tolerant collection
  /// posture of real WHOIS pipelines.
  bool ingest_text(const std::string& text);

  [[nodiscard]] std::size_t domain_count() const { return history_.size(); }
  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  [[nodiscard]] std::uint64_t malformed_count() const { return malformed_count_; }

  /// All distinct creation dates ever observed for a domain, ascending.
  [[nodiscard]] std::vector<util::Date> creation_dates(const std::string& domain) const;

  /// The re-registration event stream: every (domain, creation date) where
  /// the creation date moved strictly forward relative to an earlier
  /// observation. First sightings are included with no previous date so
  /// callers can choose the conservative subset.
  [[nodiscard]] std::vector<NewRegistration> new_registrations() const;

  /// Only events where a previous creation date was observed — the
  /// conservative, precision-first subset used by the paper's detector.
  [[nodiscard]] std::vector<NewRegistration> re_registrations() const;

 private:
  [[nodiscard]] bool in_scope(const std::string& domain) const;

  std::vector<std::string> allowed_tlds_;
  // domain -> ascending list of distinct creation dates observed
  std::map<std::string, std::vector<util::Date>> history_;
  std::uint64_t record_count_ = 0;
  std::uint64_t malformed_count_ = 0;
};

}  // namespace stalecert::whois
