#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"

namespace stalecert::whois {

/// A "thin" WHOIS record: only the registry-controlled fields (the paper
/// restricts itself to these because they are reliable for .com/.net where
/// Verisign is the registry, §4.2).
struct ThinRecord {
  std::string domain;
  std::string registrar;
  util::Date creation_date;
  util::Date updated_date;
  util::Date expiration_date;
  std::vector<std::string> name_servers;
  std::vector<std::string> status;  // EPP status codes, e.g. "clientTransferProhibited"
  /// Registrant fields are registrar-controlled and GDPR-redacted in modern
  /// records; carried for realism but never used by the detectors.
  std::optional<std::string> registrant_name;

  bool operator==(const ThinRecord&) const = default;
};

/// WHOIS response text-format families. Real WHOIS is notoriously
/// inconsistent across registrars; we model three common shapes so the
/// parser has to earn its keep.
enum class TextFormat {
  kVerisign,   // "   Domain Name: FOO.COM" key-colon-value with indentation
  kLegacyKv,   // "domain: foo.com" lowercase keys, different labels
  kDense,      // "Domain Name:foo.com" no spaces, mixed ordering
};

/// Renders a record as WHOIS response text in the given format, optionally
/// applying GDPR-style redaction of registrant fields.
std::string emit_text(const ThinRecord& record, TextFormat format,
                      bool gdpr_redacted = true);

/// Tolerant WHOIS text parser: accepts any of the emitted formats (and
/// reasonable variations). Throws ParseError when required registry fields
/// (domain, creation date) cannot be recovered.
ThinRecord parse_text(const std::string& text);

}  // namespace stalecert::whois
