#include "stalecert/whois/database.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::whois {

WhoisDatabase::WhoisDatabase(std::vector<std::string> allowed_tlds)
    : allowed_tlds_(std::move(allowed_tlds)) {}

bool WhoisDatabase::in_scope(const std::string& domain) const {
  if (allowed_tlds_.empty()) return true;
  for (const auto& tld : allowed_tlds_) {
    if (util::ends_with(domain, "." + tld)) return true;
  }
  return false;
}

bool WhoisDatabase::ingest(const ThinRecord& record) {
  const std::string domain = util::to_lower(record.domain);
  if (!in_scope(domain)) return false;
  ++record_count_;
  auto& dates = history_[domain];
  const auto it = std::lower_bound(dates.begin(), dates.end(), record.creation_date);
  if (it == dates.end() || *it != record.creation_date) {
    dates.insert(it, record.creation_date);
  }
  return true;
}

bool WhoisDatabase::ingest_text(const std::string& text) {
  try {
    return ingest(parse_text(text));
  } catch (const ParseError&) {
    ++malformed_count_;
    return false;
  }
}

std::vector<util::Date> WhoisDatabase::creation_dates(const std::string& domain) const {
  const auto it = history_.find(util::to_lower(domain));
  return it == history_.end() ? std::vector<util::Date>{} : it->second;
}

std::vector<NewRegistration> WhoisDatabase::new_registrations() const {
  std::vector<NewRegistration> out;
  for (const auto& [domain, dates] : history_) {
    for (std::size_t i = 0; i < dates.size(); ++i) {
      NewRegistration event;
      event.domain = domain;
      event.creation_date = dates[i];
      if (i > 0) event.previous_creation_date = dates[i - 1];
      out.push_back(std::move(event));
    }
  }
  return out;
}

std::vector<NewRegistration> WhoisDatabase::re_registrations() const {
  std::vector<NewRegistration> out;
  for (auto& event : new_registrations()) {
    if (event.previous_creation_date) out.push_back(std::move(event));
  }
  return out;
}

}  // namespace stalecert::whois
