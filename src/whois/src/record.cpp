#include "stalecert/whois/record.hpp"

#include <sstream>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::whois {
namespace {

std::string upper(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string emit_text(const ThinRecord& record, TextFormat format,
                      bool gdpr_redacted) {
  std::ostringstream os;
  const std::string registrant =
      gdpr_redacted ? "REDACTED FOR PRIVACY"
                    : record.registrant_name.value_or("(unknown)");
  switch (format) {
    case TextFormat::kVerisign:
      os << "   Domain Name: " << upper(record.domain) << "\n";
      os << "   Registrar: " << record.registrar << "\n";
      os << "   Updated Date: " << record.updated_date << "T00:00:00Z\n";
      os << "   Creation Date: " << record.creation_date << "T00:00:00Z\n";
      os << "   Registry Expiry Date: " << record.expiration_date << "T00:00:00Z\n";
      for (const auto& s : record.status) os << "   Domain Status: " << s << "\n";
      for (const auto& host : record.name_servers) {
        os << "   Name Server: " << upper(host) << "\n";
      }
      os << "   Registrant Name: " << registrant << "\n";
      os << ">>> Last update of whois database: " << record.updated_date
         << "T00:00:00Z <<<\n";
      break;
    case TextFormat::kLegacyKv:
      os << "domain: " << record.domain << "\n";
      os << "registrar: " << record.registrar << "\n";
      os << "created: " << record.creation_date << "\n";
      os << "changed: " << record.updated_date << "\n";
      os << "expires: " << record.expiration_date << "\n";
      for (const auto& host : record.name_servers) os << "nserver: " << host << "\n";
      for (const auto& s : record.status) os << "status: " << s << "\n";
      os << "registrant-name: " << registrant << "\n";
      break;
    case TextFormat::kDense:
      os << "Domain Name:" << record.domain << "\n";
      os << "Registrar:" << record.registrar << "\n";
      os << "Creation Date:" << record.creation_date << "\n";
      os << "Expiration Date:" << record.expiration_date << "\n";
      os << "Updated Date:" << record.updated_date << "\n";
      for (const auto& host : record.name_servers) os << "Name Server:" << host << "\n";
      for (const auto& s : record.status) os << "Status:" << s << "\n";
      os << "Registrant:" << registrant << "\n";
      break;
  }
  return os.str();
}

ThinRecord parse_text(const std::string& text) {
  ThinRecord record;
  bool have_domain = false;
  bool have_created = false;
  bool have_expires = false;

  auto parse_date_field = [](std::string_view value) {
    // Accept "YYYY-MM-DD" optionally followed by a time suffix.
    const std::string_view date_part =
        value.size() >= 10 ? value.substr(0, 10) : value;
    return util::Date::parse(date_part);
  };

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || util::starts_with(trimmed, ">>>")) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string key = util::to_lower(util::trim(trimmed.substr(0, colon)));
    const std::string_view value = util::trim(trimmed.substr(colon + 1));
    if (value.empty()) continue;

    if (key == "domain name" || key == "domain") {
      record.domain = util::to_lower(value);
      have_domain = true;
    } else if (key == "registrar") {
      record.registrar = std::string(value);
    } else if (key == "creation date" || key == "created") {
      record.creation_date = parse_date_field(value);
      have_created = true;
    } else if (key == "updated date" || key == "changed") {
      record.updated_date = parse_date_field(value);
    } else if (key == "registry expiry date" || key == "expires" ||
               key == "expiration date") {
      record.expiration_date = parse_date_field(value);
      have_expires = true;
    } else if (key == "name server" || key == "nserver") {
      record.name_servers.push_back(util::to_lower(value));
    } else if (key == "domain status" || key == "status") {
      record.status.emplace_back(value);
    } else if (key == "registrant name" || key == "registrant-name" ||
               key == "registrant") {
      if (value != "REDACTED FOR PRIVACY" && value != "(unknown)") {
        record.registrant_name = std::string(value);
      }
    }
  }

  if (!have_domain) throw ParseError("WHOIS: no domain name field");
  if (!have_created) throw ParseError("WHOIS: no creation date field");
  if (!have_expires) record.expiration_date = record.creation_date + 365;
  return record;
}

}  // namespace stalecert::whois
