#include "stalecert/asn1/der.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "stalecert/util/error.hpp"

namespace stalecert::asn1 {
namespace {

Bytes encode_length(std::size_t length) {
  Bytes out;
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return out;
  }
  Bytes digits;
  std::size_t remaining = length;
  while (remaining > 0) {
    digits.push_back(static_cast<std::uint8_t>(remaining & 0xff));
    remaining >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | digits.size()));
  out.insert(out.end(), digits.rbegin(), digits.rend());
  return out;
}

int two_digits(std::span<const std::uint8_t> s, std::size_t offset) {
  const char hi = static_cast<char>(s[offset]);
  const char lo = static_cast<char>(s[offset + 1]);
  if (hi < '0' || hi > '9' || lo < '0' || lo > '9') {
    throw ParseError("non-digit in ASN.1 time");
  }
  return (hi - '0') * 10 + (lo - '0');
}

}  // namespace

void Encoder::write_header(std::uint8_t tag, std::size_t length) {
  out_.push_back(tag);
  const Bytes len = encode_length(length);
  out_.insert(out_.end(), len.begin(), len.end());
}

void Encoder::write_boolean(bool value) {
  write_header(static_cast<std::uint8_t>(Tag::kBoolean), 1);
  out_.push_back(value ? 0xff : 0x00);
}

void Encoder::write_integer(std::int64_t value) {
  // Minimal two's-complement big-endian encoding.
  Bytes digits;
  std::uint64_t bits = static_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    digits.push_back(static_cast<std::uint8_t>(bits >> ((7 - i) * 8)));
  }
  std::size_t start = 0;
  while (start + 1 < digits.size()) {
    const bool redundant_zero = digits[start] == 0x00 && (digits[start + 1] & 0x80) == 0;
    const bool redundant_ff = digits[start] == 0xff && (digits[start + 1] & 0x80) != 0;
    if (!redundant_zero && !redundant_ff) break;
    ++start;
  }
  write_header(static_cast<std::uint8_t>(Tag::kInteger), digits.size() - start);
  out_.insert(out_.end(), digits.begin() + static_cast<std::ptrdiff_t>(start),
              digits.end());
}

void Encoder::write_integer_bytes(std::span<const std::uint8_t> magnitude) {
  if (magnitude.empty()) {
    // Canonical zero.
    write_header(static_cast<std::uint8_t>(Tag::kInteger), 1);
    out_.push_back(0x00);
    return;
  }
  std::size_t start = 0;
  while (start + 1 < magnitude.size() && magnitude[start] == 0) ++start;
  const bool needs_pad = (magnitude[start] & 0x80) != 0;
  const std::size_t body = (magnitude.size() - start) + (needs_pad ? 1 : 0);
  write_header(static_cast<std::uint8_t>(Tag::kInteger), body);
  if (needs_pad) out_.push_back(0x00);
  out_.insert(out_.end(), magnitude.begin() + static_cast<std::ptrdiff_t>(start),
              magnitude.end());
}

void Encoder::write_bit_string(std::span<const std::uint8_t> bytes,
                               unsigned unused_bits) {
  if (unused_bits > 7) throw LogicError("bit string unused_bits > 7");
  write_header(static_cast<std::uint8_t>(Tag::kBitString), bytes.size() + 1);
  out_.push_back(static_cast<std::uint8_t>(unused_bits));
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Encoder::write_octet_string(std::span<const std::uint8_t> bytes) {
  write_header(static_cast<std::uint8_t>(Tag::kOctetString), bytes.size());
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Encoder::write_null() { write_header(static_cast<std::uint8_t>(Tag::kNull), 0); }

void Encoder::write_oid(const Oid& oid) {
  const Bytes content = encode_oid_content(oid);
  write_header(static_cast<std::uint8_t>(Tag::kOid), content.size());
  out_.insert(out_.end(), content.begin(), content.end());
}

void Encoder::write_utf8_string(std::string_view text) {
  write_header(static_cast<std::uint8_t>(Tag::kUtf8String), text.size());
  out_.insert(out_.end(), text.begin(), text.end());
}

void Encoder::write_printable_string(std::string_view text) {
  write_header(static_cast<std::uint8_t>(Tag::kPrintableString), text.size());
  out_.insert(out_.end(), text.begin(), text.end());
}

void Encoder::write_ia5_string(std::string_view text) {
  write_header(static_cast<std::uint8_t>(Tag::kIa5String), text.size());
  out_.insert(out_.end(), text.begin(), text.end());
}

void Encoder::write_time(util::Date date) {
  const auto ymd = date.to_ymd();
  char buf[20];
  if (ymd.year >= 1950 && ymd.year < 2050) {
    std::snprintf(buf, sizeof buf, "%02d%02u%02u000000Z", ymd.year % 100, ymd.month,
                  ymd.day);
    write_header(static_cast<std::uint8_t>(Tag::kUtcTime), 13);
  } else {
    std::snprintf(buf, sizeof buf, "%04d%02u%02u000000Z", ymd.year, ymd.month,
                  ymd.day);
    write_header(static_cast<std::uint8_t>(Tag::kGeneralizedTime), 15);
  }
  out_.insert(out_.end(), buf, buf + std::strlen(buf));
}

void Encoder::open_constructed(std::uint8_t tag) {
  open_offsets_.push_back(out_.size());
  out_.push_back(tag);
  out_.push_back(0);  // placeholder single-byte length, fixed on close
}

void Encoder::close_constructed() {
  if (open_offsets_.empty()) throw LogicError("end without matching begin");
  const std::size_t header = open_offsets_.back();
  open_offsets_.pop_back();
  const std::size_t content_len = out_.size() - header - 2;
  const Bytes len = encode_length(content_len);
  if (len.size() == 1) {
    out_[header + 1] = len[0];
  } else {
    // Widen the placeholder to the real multi-byte length.
    out_.insert(out_.begin() + static_cast<std::ptrdiff_t>(header) + 2,
                len.begin() + 1, len.end());
    out_[header + 1] = len[0];
  }
}

void Encoder::begin_sequence() { open_constructed(static_cast<std::uint8_t>(Tag::kSequence)); }
void Encoder::end_sequence() { close_constructed(); }
void Encoder::begin_set() { open_constructed(static_cast<std::uint8_t>(Tag::kSet)); }
void Encoder::end_set() { close_constructed(); }
void Encoder::begin_context(unsigned tag_number) {
  open_constructed(context_tag(tag_number, /*constructed=*/true));
}
void Encoder::end_context() { close_constructed(); }

void Encoder::write_context_string(unsigned tag_number, std::string_view text) {
  write_header(context_tag(tag_number, /*constructed=*/false), text.size());
  out_.insert(out_.end(), text.begin(), text.end());
}

void Encoder::write_raw(std::span<const std::uint8_t> tlv) {
  out_.insert(out_.end(), tlv.begin(), tlv.end());
}

const Bytes& Encoder::bytes() const {
  if (!open_offsets_.empty()) throw LogicError("unterminated constructed type");
  return out_;
}

Bytes Encoder::take() {
  if (!open_offsets_.empty()) throw LogicError("unterminated constructed type");
  return std::move(out_);
}

std::uint8_t Decoder::peek_tag() const {
  if (at_end()) throw ParseError("DER: unexpected end of input");
  return data_[pos_];
}

Tlv Decoder::read_any() {
  if (remaining() < 2) throw ParseError("DER: truncated TLV header");
  const std::uint8_t tag = data_[pos_++];
  if ((tag & 0x1f) == 0x1f) throw ParseError("DER: multi-byte tags unsupported");
  std::size_t length = data_[pos_++];
  if (length & 0x80) {
    const std::size_t num_bytes = length & 0x7f;
    if (num_bytes == 0) throw ParseError("DER: indefinite length not allowed");
    if (num_bytes > sizeof(std::size_t)) throw ParseError("DER: length too large");
    if (remaining() < num_bytes) throw ParseError("DER: truncated length");
    length = 0;
    for (std::size_t i = 0; i < num_bytes; ++i) {
      length = length << 8 | data_[pos_++];
    }
    if (length < 0x80) throw ParseError("DER: non-minimal length encoding");
  }
  if (remaining() < length) throw ParseError("DER: truncated content");
  const Tlv tlv{tag, data_.subspan(pos_, length)};
  pos_ += length;
  return tlv;
}

Tlv Decoder::read_expected(std::uint8_t tag) {
  const std::uint8_t actual = peek_tag();
  if (actual != tag) {
    throw ParseError("DER: expected tag " + std::to_string(tag) + ", got " +
                     std::to_string(actual));
  }
  return read_any();
}

bool Decoder::read_boolean() {
  const Tlv tlv = read_expected(Tag::kBoolean);
  if (tlv.content.size() != 1) throw ParseError("DER: BOOLEAN length != 1");
  if (tlv.content[0] != 0x00 && tlv.content[0] != 0xff) {
    throw ParseError("DER: non-canonical BOOLEAN");
  }
  return tlv.content[0] == 0xff;
}

std::int64_t Decoder::read_integer() {
  const Tlv tlv = read_expected(Tag::kInteger);
  if (tlv.content.empty() || tlv.content.size() > 8) {
    throw ParseError("DER: INTEGER does not fit int64");
  }
  std::int64_t value = (tlv.content[0] & 0x80) ? -1 : 0;
  for (const std::uint8_t byte : tlv.content) {
    value = static_cast<std::int64_t>(static_cast<std::uint64_t>(value) << 8) |
            byte;
  }
  return value;
}

Bytes Decoder::read_integer_bytes() {
  const Tlv tlv = read_expected(Tag::kInteger);
  if (tlv.content.empty()) throw ParseError("DER: empty INTEGER");
  std::span<const std::uint8_t> magnitude = tlv.content;
  if (magnitude.size() > 1 && magnitude[0] == 0x00) magnitude = magnitude.subspan(1);
  return Bytes(magnitude.begin(), magnitude.end());
}

Bytes Decoder::read_bit_string(unsigned* unused_bits) {
  const Tlv tlv = read_expected(Tag::kBitString);
  if (tlv.content.empty()) throw ParseError("DER: empty BIT STRING");
  if (unused_bits) *unused_bits = tlv.content[0];
  return Bytes(tlv.content.begin() + 1, tlv.content.end());
}

Bytes Decoder::read_octet_string() {
  const Tlv tlv = read_expected(Tag::kOctetString);
  return Bytes(tlv.content.begin(), tlv.content.end());
}

void Decoder::read_null() {
  const Tlv tlv = read_expected(Tag::kNull);
  if (!tlv.content.empty()) throw ParseError("DER: NULL with content");
}

Oid Decoder::read_oid() {
  const Tlv tlv = read_expected(Tag::kOid);
  return decode_oid_content(tlv.content);
}

std::string Decoder::read_string() {
  const std::uint8_t tag = peek_tag();
  if (tag != static_cast<std::uint8_t>(Tag::kUtf8String) &&
      tag != static_cast<std::uint8_t>(Tag::kPrintableString) &&
      tag != static_cast<std::uint8_t>(Tag::kIa5String)) {
    throw ParseError("DER: expected a string type");
  }
  const Tlv tlv = read_any();
  return std::string(tlv.content.begin(), tlv.content.end());
}

util::Date Decoder::read_time() {
  const std::uint8_t tag = peek_tag();
  const Tlv tlv = read_any();
  int year = 0;
  std::size_t offset = 0;
  if (tag == static_cast<std::uint8_t>(Tag::kUtcTime)) {
    if (tlv.content.size() != 13) throw ParseError("DER: bad UTCTime length");
    const int yy = two_digits(tlv.content, 0);
    year = yy >= 50 ? 1900 + yy : 2000 + yy;
    offset = 2;
  } else if (tag == static_cast<std::uint8_t>(Tag::kGeneralizedTime)) {
    if (tlv.content.size() != 15) throw ParseError("DER: bad GeneralizedTime length");
    year = two_digits(tlv.content, 0) * 100 + two_digits(tlv.content, 2);
    offset = 4;
  } else {
    throw ParseError("DER: expected a time type");
  }
  const int month = two_digits(tlv.content, offset);
  const int day = two_digits(tlv.content, offset + 2);
  if (tlv.content.back() != 'Z') throw ParseError("DER: time must be Zulu");
  return util::Date::from_ymd(year, static_cast<unsigned>(month),
                              static_cast<unsigned>(day));
}

Bytes encode_oid_content(const Oid& oid) {
  const auto& arcs = oid.arcs();
  if (arcs.size() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] >= 40)) {
    throw LogicError("invalid OID arcs for encoding");
  }
  Bytes out;
  auto push_base128 = [&out](std::uint32_t value) {
    std::uint8_t chunks[5];
    int n = 0;
    do {
      chunks[n++] = static_cast<std::uint8_t>(value & 0x7f);
      value >>= 7;
    } while (value > 0);
    for (int i = n - 1; i >= 0; --i) {
      out.push_back(static_cast<std::uint8_t>(chunks[i] | (i > 0 ? 0x80 : 0x00)));
    }
  };
  push_base128(arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) push_base128(arcs[i]);
  return out;
}

Oid decode_oid_content(std::span<const std::uint8_t> content) {
  if (content.empty()) throw ParseError("DER: empty OID");
  std::vector<std::uint32_t> arcs;
  std::uint64_t value = 0;
  bool in_arc = false;
  for (const std::uint8_t byte : content) {
    value = value << 7 | (byte & 0x7f);
    if (value > 0xffffffffULL) throw ParseError("DER: OID arc overflow");
    in_arc = (byte & 0x80) != 0;
    if (!in_arc) {
      if (arcs.empty()) {
        const std::uint32_t first = value >= 80 ? 2 : static_cast<std::uint32_t>(value / 40);
        arcs.push_back(first);
        arcs.push_back(static_cast<std::uint32_t>(value - first * 40));
      } else {
        arcs.push_back(static_cast<std::uint32_t>(value));
      }
      value = 0;
    }
  }
  if (in_arc) throw ParseError("DER: truncated OID arc");
  return Oid{std::move(arcs)};
}

}  // namespace stalecert::asn1
