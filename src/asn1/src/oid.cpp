#include "stalecert/asn1/oid.hpp"

#include <charconv>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::asn1 {

Oid Oid::parse(std::string_view dotted) {
  if (dotted.empty()) throw ParseError("empty OID");
  std::vector<std::uint32_t> arcs;
  for (const auto& part : util::split(dotted, '.')) {
    std::uint32_t arc = 0;
    const auto* first = part.data();
    const auto* last = part.data() + part.size();
    auto [ptr, ec] = std::from_chars(first, last, arc);
    if (ec != std::errc{} || ptr != last || part.empty()) {
      throw ParseError("invalid OID arc '" + part + "'");
    }
    arcs.push_back(arc);
  }
  if (arcs.size() < 2) throw ParseError("OID needs at least two arcs");
  return Oid{std::move(arcs)};
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

namespace oids {
#define STALECERT_DEFINE_OID(name, ...)      \
  const Oid& name() {                        \
    static const Oid oid{__VA_ARGS__};       \
    return oid;                              \
  }

STALECERT_DEFINE_OID(common_name, 2, 5, 4, 3)
STALECERT_DEFINE_OID(organization, 2, 5, 4, 10)
STALECERT_DEFINE_OID(country, 2, 5, 4, 6)
STALECERT_DEFINE_OID(subject_alt_name, 2, 5, 29, 17)
STALECERT_DEFINE_OID(basic_constraints, 2, 5, 29, 19)
STALECERT_DEFINE_OID(key_usage, 2, 5, 29, 15)
STALECERT_DEFINE_OID(ext_key_usage, 2, 5, 29, 37)
STALECERT_DEFINE_OID(subject_key_id, 2, 5, 29, 14)
STALECERT_DEFINE_OID(authority_key_id, 2, 5, 29, 35)
STALECERT_DEFINE_OID(crl_distribution_points, 2, 5, 29, 31)
STALECERT_DEFINE_OID(authority_info_access, 1, 3, 6, 1, 5, 5, 7, 1, 1)
STALECERT_DEFINE_OID(certificate_policies, 2, 5, 29, 32)
STALECERT_DEFINE_OID(crl_reason, 2, 5, 29, 21)
STALECERT_DEFINE_OID(tls_feature, 1, 3, 6, 1, 5, 5, 7, 1, 24)
STALECERT_DEFINE_OID(ct_precert_poison, 1, 3, 6, 1, 4, 1, 11129, 2, 4, 3)
STALECERT_DEFINE_OID(ct_sct_list, 1, 3, 6, 1, 4, 1, 11129, 2, 4, 2)
STALECERT_DEFINE_OID(server_auth, 1, 3, 6, 1, 5, 5, 7, 3, 1)
STALECERT_DEFINE_OID(client_auth, 1, 3, 6, 1, 5, 5, 7, 3, 2)
STALECERT_DEFINE_OID(code_signing, 1, 3, 6, 1, 5, 5, 7, 3, 3)
STALECERT_DEFINE_OID(email_protection, 1, 3, 6, 1, 5, 5, 7, 3, 4)
STALECERT_DEFINE_OID(ocsp_signing, 1, 3, 6, 1, 5, 5, 7, 3, 9)
STALECERT_DEFINE_OID(sha256_with_rsa, 1, 2, 840, 113549, 1, 1, 11)
STALECERT_DEFINE_OID(ecdsa_with_sha256, 1, 2, 840, 10045, 4, 3, 2)

#undef STALECERT_DEFINE_OID
}  // namespace oids

}  // namespace stalecert::asn1
