#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stalecert/asn1/oid.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::asn1 {

using Bytes = std::vector<std::uint8_t>;

/// ASN.1 universal tag numbers supported by this DER subset.
enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kIa5String = 0x16,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Builds a context-specific tag byte ([n] constructed/primitive).
constexpr std::uint8_t context_tag(unsigned n, bool constructed) {
  return static_cast<std::uint8_t>(0x80u | (constructed ? 0x20u : 0u) | n);
}

/// DER encoder. Primitive write_* calls append full TLVs; nested structures
/// are built via begin_sequence()/end_sequence() (lengths are backfilled in
/// definite form, as DER requires).
class Encoder {
 public:
  void write_boolean(bool value);
  void write_integer(std::int64_t value);
  /// Arbitrary-width non-negative INTEGER from big-endian magnitude bytes.
  void write_integer_bytes(std::span<const std::uint8_t> magnitude);
  void write_bit_string(std::span<const std::uint8_t> bytes, unsigned unused_bits = 0);
  void write_octet_string(std::span<const std::uint8_t> bytes);
  void write_null();
  void write_oid(const Oid& oid);
  void write_utf8_string(std::string_view text);
  void write_printable_string(std::string_view text);
  void write_ia5_string(std::string_view text);
  /// Encodes a Date as UTCTime (YYMMDD000000Z) when 1950<=year<2050,
  /// otherwise GeneralizedTime, matching the X.509 convention.
  void write_time(util::Date date);

  void begin_sequence();
  void end_sequence();
  void begin_set();
  void end_set();
  /// Explicit context tag wrapper, e.g. [3] around the extensions block.
  void begin_context(unsigned tag_number);
  void end_context();
  /// Primitive context-tagged string, e.g. SAN dNSName is [2] IA5String.
  void write_context_string(unsigned tag_number, std::string_view text);

  /// Appends a pre-encoded TLV verbatim.
  void write_raw(std::span<const std::uint8_t> tlv);

  [[nodiscard]] const Bytes& bytes() const;
  [[nodiscard]] Bytes take();

 private:
  void write_header(std::uint8_t tag, std::size_t length);
  void open_constructed(std::uint8_t tag);
  void close_constructed();

  Bytes out_;
  std::vector<std::size_t> open_offsets_;  // offsets of constructed headers
};

/// A decoded TLV. `content` aliases the decoder's input buffer.
struct Tlv {
  std::uint8_t tag = 0;
  std::span<const std::uint8_t> content;

  [[nodiscard]] bool is_constructed() const { return (tag & 0x20) != 0; }
  [[nodiscard]] bool is_context(unsigned n) const {
    return (tag & 0xc0) == 0x80 && (tag & 0x1f) == n;
  }
};

/// DER decoder over a borrowed byte buffer. The buffer must outlive the
/// decoder and any Tlv spans read from it.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Peeks the next tag byte without consuming. Throws at end of input.
  [[nodiscard]] std::uint8_t peek_tag() const;

  /// Reads the next TLV of any tag.
  Tlv read_any();
  /// Reads the next TLV and checks its tag. Throws ParseError on mismatch.
  Tlv read_expected(std::uint8_t tag);
  Tlv read_expected(Tag tag) { return read_expected(static_cast<std::uint8_t>(tag)); }

  bool read_boolean();
  std::int64_t read_integer();
  Bytes read_integer_bytes();
  Bytes read_bit_string(unsigned* unused_bits = nullptr);
  Bytes read_octet_string();
  void read_null();
  Oid read_oid();
  std::string read_string();  // accepts UTF8/Printable/IA5
  util::Date read_time();     // accepts UTCTime / GeneralizedTime

  /// Enters a SEQUENCE/SET/constructed context tag; returns a sub-decoder
  /// over its content.
  Decoder enter_sequence() { return Decoder{read_expected(Tag::kSequence).content}; }
  Decoder enter_set() { return Decoder{read_expected(Tag::kSet).content}; }
  Decoder enter(const Tlv& tlv) { return Decoder{tlv.content}; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Decodes OID content bytes (without header) — shared with the decoder.
Oid decode_oid_content(std::span<const std::uint8_t> content);
/// Encodes OID content bytes (without header).
Bytes encode_oid_content(const Oid& oid);

}  // namespace stalecert::asn1
