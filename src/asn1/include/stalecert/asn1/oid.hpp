#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace stalecert::asn1 {

/// An ASN.1 OBJECT IDENTIFIER (dotted arc sequence, e.g. 2.5.29.17).
class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted notation "1.2.840.113549". Throws ParseError.
  static Oid parse(std::string_view dotted);

  [[nodiscard]] const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool empty() const { return arcs_.empty(); }

  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

/// Well-known OIDs used by the X.509 layer.
namespace oids {
const Oid& common_name();            // 2.5.4.3
const Oid& organization();           // 2.5.4.10
const Oid& country();                // 2.5.4.6
const Oid& subject_alt_name();       // 2.5.29.17
const Oid& basic_constraints();      // 2.5.29.19
const Oid& key_usage();              // 2.5.29.15
const Oid& ext_key_usage();          // 2.5.29.37
const Oid& subject_key_id();         // 2.5.29.14
const Oid& authority_key_id();       // 2.5.29.35
const Oid& crl_distribution_points();// 2.5.29.31
const Oid& authority_info_access();  // 1.3.6.1.5.5.7.1.1
const Oid& certificate_policies();   // 2.5.29.32
const Oid& crl_reason();             // 2.5.29.21
const Oid& tls_feature();            // 1.3.6.1.5.5.7.1.24 (RFC 7633)
const Oid& ct_precert_poison();      // 1.3.6.1.4.1.11129.2.4.3
const Oid& ct_sct_list();            // 1.3.6.1.4.1.11129.2.4.2
const Oid& server_auth();            // 1.3.6.1.5.5.7.3.1
const Oid& client_auth();            // 1.3.6.1.5.5.7.3.2
const Oid& code_signing();           // 1.3.6.1.5.5.7.3.3
const Oid& email_protection();       // 1.3.6.1.5.5.7.3.4
const Oid& ocsp_signing();           // 1.3.6.1.5.5.7.3.9
const Oid& sha256_with_rsa();        // 1.2.840.113549.1.1.11
const Oid& ecdsa_with_sha256();      // 1.2.840.10045.4.3.2
}  // namespace oids

}  // namespace stalecert::asn1
