#pragma once

#include <cstdint>
#include <string>

#include "stalecert/crypto/sha256.hpp"

namespace stalecert::crypto {

/// Public-key algorithm families seen in the paper's certificate corpus.
enum class KeyAlgorithm : std::uint8_t {
  kRsa2048,
  kRsa4096,
  kEcdsaP256,
  kEcdsaP384,
  kEd25519,
};

std::string to_string(KeyAlgorithm algorithm);

/// A modelled keypair. What the stale-certificate study cares about is
/// *custody* of private keys, not the key mathematics, so a keypair here is
/// a stable identity: the SPKI fingerprint (Subject Public Key Info hash)
/// plus the algorithm. Two certificates that embed the same KeyPair share a
/// private key — exactly the property the managed-TLS and key-compromise
/// analyses depend on.
class KeyPair {
 public:
  KeyPair() = default;
  KeyPair(std::uint64_t seed, KeyAlgorithm algorithm);

  /// Derives a fresh keypair deterministically from a label (e.g.
  /// "cloudflare/customer-123/rotation-2").
  static KeyPair derive(std::string_view label, KeyAlgorithm algorithm);

  /// Reconstructs a keypair identity from serialized parts (DER parsing).
  static KeyPair from_parts(const Digest& spki_fingerprint, KeyAlgorithm algorithm);

  [[nodiscard]] const Digest& spki_fingerprint() const { return spki_fingerprint_; }
  [[nodiscard]] KeyAlgorithm algorithm() const { return algorithm_; }
  /// Subject Key Identifier bytes (RFC 5280 method 1: SHA hash of SPKI).
  [[nodiscard]] const Digest& key_id() const { return spki_fingerprint_; }
  [[nodiscard]] std::string fingerprint_hex() const {
    return digest_hex(spki_fingerprint_);
  }
  /// Compact 64-bit id used for hash-map joins in the detectors.
  [[nodiscard]] std::uint64_t id64() const {
    return digest_prefix64(spki_fingerprint_);
  }

  bool operator==(const KeyPair& other) const {
    return spki_fingerprint_ == other.spki_fingerprint_;
  }

 private:
  Digest spki_fingerprint_{};
  KeyAlgorithm algorithm_ = KeyAlgorithm::kEcdsaP256;
};

}  // namespace stalecert::crypto
