#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace stalecert::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Streaming SHA-256 (FIPS 180-4), implemented from scratch and verified
/// against the NIST test vectors in tests/crypto. Used for Merkle tree
/// hashing in the CT substrate, certificate fingerprints, and key IDs.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  /// Finalizes and returns the digest. The object must be reset() before
  /// further updates.
  [[nodiscard]] Digest finish();

  /// One-shot helpers.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 (RFC 2104); used to derive deterministic per-entity secrets
/// in the simulator.
Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message);
Digest hmac_sha256(std::string_view key, std::string_view message);

/// Lowercase hex string of a digest.
std::string digest_hex(const Digest& digest);

/// First 8 bytes of a digest interpreted big-endian, handy as a compact id.
std::uint64_t digest_prefix64(const Digest& digest);

}  // namespace stalecert::crypto
