#include "stalecert/crypto/keypair.hpp"

#include <cstring>

namespace stalecert::crypto {

std::string to_string(KeyAlgorithm algorithm) {
  switch (algorithm) {
    case KeyAlgorithm::kRsa2048: return "RSA-2048";
    case KeyAlgorithm::kRsa4096: return "RSA-4096";
    case KeyAlgorithm::kEcdsaP256: return "ECDSA-P256";
    case KeyAlgorithm::kEcdsaP384: return "ECDSA-P384";
    case KeyAlgorithm::kEd25519: return "Ed25519";
  }
  return "unknown";
}

KeyPair::KeyPair(std::uint64_t seed, KeyAlgorithm algorithm)
    : algorithm_(algorithm) {
  std::uint8_t material[9];
  for (int i = 0; i < 8; ++i) material[i] = static_cast<std::uint8_t>(seed >> (i * 8));
  material[8] = static_cast<std::uint8_t>(algorithm);
  spki_fingerprint_ = Sha256::hash(std::span<const std::uint8_t>(material, sizeof material));
}

KeyPair KeyPair::from_parts(const Digest& spki_fingerprint, KeyAlgorithm algorithm) {
  KeyPair kp;
  kp.algorithm_ = algorithm;
  kp.spki_fingerprint_ = spki_fingerprint;
  return kp;
}

KeyPair KeyPair::derive(std::string_view label, KeyAlgorithm algorithm) {
  KeyPair kp;
  kp.algorithm_ = algorithm;
  Sha256 h;
  h.update("stalecert/keypair/v1:");
  h.update(label);
  const std::uint8_t alg = static_cast<std::uint8_t>(algorithm);
  h.update(std::span<const std::uint8_t>(&alg, 1));
  kp.spki_fingerprint_ = h.finish();
  return kp;
}

}  // namespace stalecert::crypto
