#include "stalecert/reputation/service.hpp"

#include <algorithm>
#include <cctype>
#include <set>

#include "stalecert/util/strings.hpp"

namespace stalecert::reputation {

std::string to_string(UrlCategory category) {
  switch (category) {
    case UrlCategory::kPhishing: return "phishing";
    case UrlCategory::kMalicious: return "malicious";
    case UrlCategory::kMalware: return "malware";
  }
  return "?";
}

std::size_t DomainReport::url_vendor_count(UrlCategory category) const {
  std::set<std::string> vendors;
  for (const auto& verdict : url_verdicts) {
    if (verdict.category == category) vendors.insert(verdict.vendor);
  }
  return vendors.size();
}

std::optional<util::Date> DomainReport::earliest_file_submission() const {
  std::optional<util::Date> earliest;
  for (const auto& file : files) {
    if (!earliest || file.first_submission < *earliest) {
      earliest = file.first_submission;
    }
  }
  return earliest;
}

std::optional<util::Date> DomainReport::url_flag_date(std::size_t min_vendors) const {
  // Walk verdicts in date order; return the date the distinct-vendor count
  // first reaches the threshold.
  std::vector<const UrlVerdict*> ordered;
  ordered.reserve(url_verdicts.size());
  for (const auto& v : url_verdicts) ordered.push_back(&v);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    return a->first_labeled < b->first_labeled;
  });
  std::set<std::string> vendors;
  for (const auto* verdict : ordered) {
    vendors.insert(verdict->vendor);
    if (vendors.size() >= min_vendors) return verdict->first_labeled;
  }
  return std::nullopt;
}

FamilyLabeler::FamilyLabeler() {
  // A few canonical alias resolutions in the spirit of Malpedia.
  add_alias("zeusvm", "zeus");
  add_alias("zbot", "zeus");
  add_alias("wannacrypt", "wannacry");
  add_alias("wcry", "wannacry");
  add_alias("emotetcrypt", "emotet");
  add_alias("heodo", "emotet");
}

void FamilyLabeler::add_alias(const std::string& alias, const std::string& family) {
  aliases_[util::to_lower(alias)] = util::to_lower(family);
}

std::string FamilyLabeler::normalize(const std::string& token) const {
  const std::string lowered = util::to_lower(token);
  const auto it = aliases_.find(lowered);
  return it == aliases_.end() ? lowered : it->second;
}

std::string FamilyLabeler::label(const std::vector<std::string>& av_labels,
                                 std::size_t min_count) const {
  // Tokenize labels on common AV separators, drop generic tokens, count.
  static const std::set<std::string> kGeneric = {
      "trojan", "generic", "win32", "win64", "malware", "agent",
      "variant", "application", "riskware", "heur", "gen", "a", "b", "c"};
  std::map<std::string, std::size_t> counts;
  for (const auto& raw : av_labels) {
    std::string cleaned = raw;
    for (auto& c : cleaned) {
      if (c == '/' || c == '.' || c == ':' || c == '!' || c == '-') c = ' ';
    }
    std::set<std::string> seen_in_label;  // count each token once per label
    for (const auto& token : util::split(cleaned, ' ')) {
      if (token.size() < 3) continue;
      const std::string normalized = normalize(token);
      if (kGeneric.contains(normalized)) continue;
      if (seen_in_label.insert(normalized).second) ++counts[normalized];
    }
  }
  std::string best = "Unknown";
  std::size_t best_count = 0;
  for (const auto& [family, count] : counts) {
    if (count > best_count) {
      best = family;
      best_count = count;
    }
  }
  return best_count >= min_count ? best : "Unknown";
}

void ReputationService::seed_url_verdicts(const std::string& domain,
                                          std::vector<UrlVerdict> verdicts) {
  auto& report = reports_[util::to_lower(domain)];
  report.domain = util::to_lower(domain);
  report.url_verdicts.insert(report.url_verdicts.end(),
                             std::make_move_iterator(verdicts.begin()),
                             std::make_move_iterator(verdicts.end()));
}

void ReputationService::seed_file(const std::string& domain, FileReport file) {
  auto& report = reports_[util::to_lower(domain)];
  report.domain = util::to_lower(domain);
  report.files.push_back(std::move(file));
}

DomainReport ReputationService::query(const std::string& domain) const {
  ++query_count_;
  const auto it = reports_.find(util::to_lower(domain));
  if (it == reports_.end()) {
    DomainReport empty;
    empty.domain = util::to_lower(domain);
    return empty;
  }
  return it->second;
}

}  // namespace stalecert::reputation
