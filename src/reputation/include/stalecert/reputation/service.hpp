#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"

namespace stalecert::reputation {

/// Categories a security vendor can assign to a URL verdict (the paper
/// tallies malware / phishing / malicious, Table 5).
enum class UrlCategory : std::uint8_t { kPhishing, kMalicious, kMalware };

std::string to_string(UrlCategory category);

/// One vendor's verdict on a URL associated with a domain.
struct UrlVerdict {
  std::string vendor;
  UrlCategory category = UrlCategory::kMalicious;
  util::Date first_labeled;
};

/// A malicious file associated with a domain, with per-vendor AV labels.
struct FileReport {
  std::string sha256;
  util::Date first_submission;
  std::vector<std::string> av_labels;  // raw vendor label strings
};

/// Everything the reputation service knows about one domain.
struct DomainReport {
  std::string domain;
  std::vector<UrlVerdict> url_verdicts;
  std::vector<FileReport> files;

  [[nodiscard]] bool empty() const { return url_verdicts.empty() && files.empty(); }

  /// Count of distinct vendors flagging the domain's URLs in a category.
  [[nodiscard]] std::size_t url_vendor_count(UrlCategory category) const;
  /// Earliest first_submission across associated malicious files.
  [[nodiscard]] std::optional<util::Date> earliest_file_submission() const;
  /// Earliest date at which >= min_vendors labeled a URL (any category).
  [[nodiscard]] std::optional<util::Date> url_flag_date(std::size_t min_vendors) const;
};

/// AVClass2-style malware family extraction: normalizes raw AV label
/// strings, resolves family aliases (Malpedia-style), and returns the
/// plurality family or "Unknown".
class FamilyLabeler {
 public:
  FamilyLabeler();

  /// Adds an alias ("zeusvm" -> "zeus").
  void add_alias(const std::string& alias, const std::string& family);

  /// Extracts the plurality family from raw AV labels; "Unknown" if no
  /// token appears at least `min_count` times.
  [[nodiscard]] std::string label(const std::vector<std::string>& av_labels,
                                  std::size_t min_count = 2) const;

 private:
  [[nodiscard]] std::string normalize(const std::string& token) const;
  std::map<std::string, std::string> aliases_;
};

/// The VirusTotal-like query service. The world simulator seeds malicious
/// activity; analysis code queries per domain, mirroring the paper's
/// 100K-domain sampling workflow (§5.2).
class ReputationService {
 public:
  /// Threshold used throughout the paper: flagged by >= 5 vendors.
  static constexpr std::size_t kDetectionThreshold = 5;

  void seed_url_verdicts(const std::string& domain, std::vector<UrlVerdict> verdicts);
  void seed_file(const std::string& domain, FileReport file);

  [[nodiscard]] DomainReport query(const std::string& domain) const;
  [[nodiscard]] std::uint64_t query_count() const { return query_count_; }
  [[nodiscard]] std::size_t seeded_domains() const { return reports_.size(); }

 private:
  std::map<std::string, DomainReport> reports_;
  mutable std::uint64_t query_count_ = 0;
};

}  // namespace stalecert::reputation
