#include "stalecert/popularity/toplist.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::popularity {

void TopListArchive::add_sample(TopListSample sample) {
  for (std::size_t i = 0; i < sample.ranked_e2lds.size(); ++i) {
    const std::string domain = util::to_lower(sample.ranked_e2lds[i]);
    const std::uint64_t rank = i + 1;
    const auto it = min_rank_.find(domain);
    if (it == min_rank_.end() || rank < it->second) min_rank_[domain] = rank;
  }
  samples_.push_back(std::move(sample));
}

std::optional<std::uint64_t> TopListArchive::min_rank(const std::string& e2ld) const {
  const auto it = min_rank_.find(util::to_lower(e2ld));
  return it == min_rank_.end() ? std::nullopt : std::optional{it->second};
}

std::map<std::uint64_t, std::uint64_t> TopListArchive::bucket_counts(
    const std::vector<std::string>& e2lds,
    const std::vector<std::uint64_t>& bounds) const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const auto bound : bounds) out[bound] = 0;
  for (const auto& domain : e2lds) {
    const auto rank = min_rank(domain);
    if (!rank) continue;
    for (const auto bound : bounds) {
      if (*rank <= bound) ++out[bound];
    }
  }
  return out;
}

TopListArchive generate_biannual_archive(const std::vector<std::string>& universe,
                                         util::Date first, util::Date last,
                                         std::size_t list_size, util::Rng& rng) {
  if (universe.empty()) throw LogicError("toplist: empty universe");
  list_size = std::min(list_size, universe.size());

  // Assign each domain a base popularity weight (heavy-tailed) and evolve
  // it multiplicatively between samples to create churn.
  std::vector<double> weight(universe.size());
  for (auto& w : weight) w = rng.lognormal(0.0, 2.0);

  TopListArchive archive;
  for (util::Date d = first; d <= last; d += 182) {
    std::vector<std::size_t> order(universe.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(list_size),
                      order.end(),
                      [&](std::size_t a, std::size_t b) { return weight[a] > weight[b]; });
    TopListSample sample;
    sample.date = d;
    sample.ranked_e2lds.reserve(list_size);
    for (std::size_t i = 0; i < list_size; ++i) {
      sample.ranked_e2lds.push_back(universe[order[i]]);
    }
    archive.add_sample(std::move(sample));
    // Churn for the next sample.
    for (auto& w : weight) w *= rng.lognormal(0.0, 0.35);
  }
  return archive;
}

}  // namespace stalecert::popularity
