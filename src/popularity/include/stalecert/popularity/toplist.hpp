#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::popularity {

/// One Alexa-style ranked sample: rank 1 is the most popular e2LD.
struct TopListSample {
  util::Date date;
  std::vector<std::string> ranked_e2lds;  // index 0 = rank 1
};

/// Archive of biannual top-list samples (the paper samples Alexa Top 1M
/// every six months from 2014 to 2022) with min-rank lookup by e2LD.
class TopListArchive {
 public:
  void add_sample(TopListSample sample);

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<TopListSample>& samples() const { return samples_; }

  /// The best (lowest) rank the e2LD ever achieved across all samples.
  [[nodiscard]] std::optional<std::uint64_t> min_rank(const std::string& e2ld) const;

  /// Counts how many of `e2lds` have min-rank <= each bucket bound —
  /// the Table 6 rows (Top 1K / 10K / 100K / 1M).
  [[nodiscard]] std::map<std::uint64_t, std::uint64_t> bucket_counts(
      const std::vector<std::string>& e2lds,
      const std::vector<std::uint64_t>& bounds) const;

 private:
  std::vector<TopListSample> samples_;
  std::map<std::string, std::uint64_t> min_rank_;
};

/// Generates a biannual archive over a domain universe with Zipf-ish
/// popularity and per-sample churn (domains rise, fall, enter, exit) —
/// enough structure to exercise min-rank matching.
TopListArchive generate_biannual_archive(const std::vector<std::string>& universe,
                                         util::Date first, util::Date last,
                                         std::size_t list_size, util::Rng& rng);

}  // namespace stalecert::popularity
