#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/ca/authority.hpp"

namespace stalecert::ca {

using AccountId = std::uint64_t;
using OrderId = std::uint64_t;

/// RFC 8555 order states (simplified: "processing" is instantaneous here).
enum class OrderStatus : std::uint8_t { kPending, kReady, kValid, kInvalid };
enum class AuthzStatus : std::uint8_t { kPending, kValid, kInvalid };

std::string to_string(OrderStatus status);
std::string to_string(AuthzStatus status);

/// One challenge offered for an authorization.
struct AcmeChallenge {
  ChallengeType type = ChallengeType::kHttp01;
  std::uint64_t token = 0;
  bool completed = false;
};

/// Authorization for one identifier.
struct AcmeAuthorization {
  std::string domain;   // base domain (wildcard stripped)
  bool wildcard = false;
  AuthzStatus status = AuthzStatus::kPending;
  std::vector<AcmeChallenge> challenges;
};

/// An ACME order.
struct AcmeOrder {
  OrderId id = 0;
  AccountId account = 0;
  std::vector<std::string> identifiers;  // as requested (may include "*.")
  OrderStatus status = OrderStatus::kPending;
  std::vector<AcmeAuthorization> authorizations;
  std::optional<x509::Certificate> certificate;
  util::Date created;
  util::Date expires;  // unfinalized orders lapse
};

/// An RFC 8555-style ACME front end over a CertificateAuthority: account
/// registration, orders, per-identifier authorizations with HTTP-01 /
/// DNS-01 / TLS-ALPN-01 challenges (wildcards restricted to DNS-01), and
/// finalization into an issued, CT-logged certificate. This is the
/// automation layer (§2.2) that enables 90-day lifetimes — and the
/// unattended reissuance hazard of §7.1.
class AcmeServer {
 public:
  AcmeServer(CertificateAuthority* ca, std::uint64_t seed,
             std::int64_t order_lifetime_days = 7);

  /// Registers an account bound to a world actor (key thumbprint analog).
  AccountId new_account(ActorId actor, std::string contact, util::Date now);
  [[nodiscard]] bool account_exists(AccountId account) const;

  /// Creates an order; one authorization per unique base identifier.
  /// Throws LogicError for unknown accounts or empty identifier lists.
  OrderId new_order(AccountId account, std::vector<std::string> identifiers,
                    util::Date now);

  [[nodiscard]] const AcmeOrder& order(OrderId id) const;

  /// The client signals it has provisioned the challenge response; the
  /// server verifies control through the CA's validation environment.
  /// Returns true when the challenge validates. Wildcard authorizations
  /// only accept DNS-01.
  bool respond_challenge(OrderId id, const std::string& domain, ChallengeType type,
                         ActorId actor, util::Date now);

  /// Finalizes a ready order with the subscriber's key ("CSR"): issues and
  /// returns the certificate. Fails (nullopt, order -> invalid) if the
  /// order is not ready or expired.
  std::optional<x509::Certificate> finalize(OrderId id, const crypto::KeyPair& key,
                                            util::Date now);

  [[nodiscard]] std::uint64_t issued_count() const { return issued_; }

 private:
  AcmeOrder& require_order(OrderId id);
  void refresh_order_status(AcmeOrder& order, util::Date now);

  CertificateAuthority* ca_;
  util::Rng rng_;
  std::int64_t order_lifetime_days_;
  std::map<AccountId, std::pair<ActorId, std::string>> accounts_;
  std::map<OrderId, AcmeOrder> orders_;
  AccountId next_account_ = 1;
  OrderId next_order_ = 1;
  std::uint64_t issued_ = 0;
};

}  // namespace stalecert::ca
