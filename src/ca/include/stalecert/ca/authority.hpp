#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/ca/dv.hpp"
#include "stalecert/ct/logset.hpp"
#include "stalecert/revocation/crl.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::ca {

/// CA/Browser Forum maximum DV certificate lifetime in effect on a given
/// date: 39 months before Ballot 193 (March 2018), 825 days until the
/// browser-enforced 398-day limit of September 1, 2020.
std::int64_t cab_forum_max_lifetime(util::Date date);

/// Static description of a CA brand (market profiles are instantiated in
/// sim/ to mirror the paper's issuer mix).
struct CaProfile {
  std::string name;          // issuer CN, e.g. "Let's Encrypt X3"
  std::string organization;  // e.g. "ISRG (Let's Encrypt)"
  std::string country = "US";
  /// Self-imposed cap below the CA/B Forum limit (Let's Encrypt, GTS and
  /// cPanel enforce 90 days).
  std::optional<std::int64_t> self_imposed_max_days;
  /// Lifetime this CA issues by default when the subscriber doesn't ask.
  std::int64_t default_days = 365;
  bool automated = false;  // ACME pipeline
  std::string crl_url;
};

struct IssuanceRequest {
  std::vector<std::string> domains;     // SAN list, first entry becomes CN
  crypto::KeyPair subscriber_key;
  ActorId account = 0;
  util::Date date;
  std::optional<std::int64_t> requested_days;
  ChallengeType challenge = ChallengeType::kHttp01;
};

struct IssuanceError {
  enum class Kind { kValidationFailed, kNoDomains } kind;
  std::string detail;
};

struct IssuanceOutcome {
  std::optional<x509::Certificate> certificate;
  std::optional<IssuanceError> error;
  bool validation_reused = false;
  [[nodiscard]] bool ok() const { return certificate.has_value(); }
};

/// A certificate authority: verifies domain control, enforces the lifetime
/// policy in effect at issuance, logs precertificate + certificate to CT,
/// and maintains its revocation list.
class CertificateAuthority {
 public:
  CertificateAuthority(CaProfile profile, std::uint64_t seed);

  [[nodiscard]] const CaProfile& profile() const { return profile_; }
  [[nodiscard]] const crypto::KeyPair& issuing_key() const { return issuing_key_; }
  [[nodiscard]] x509::DistinguishedName issuer_dn() const;

  /// Attaches the CT log set that issued certificates are submitted to.
  void attach_ct(ct::LogSet* logs) { logs_ = logs; }
  void attach_validation(const ValidationEnvironment* env) { validation_env_ = env; }
  [[nodiscard]] const ValidationEnvironment* validation_environment() const {
    return validation_env_;
  }

  /// Effective maximum lifetime on a date: min(CA/B rule, self-imposed).
  [[nodiscard]] std::int64_t max_lifetime_at(util::Date date) const;

  /// Full issuance pipeline: DV validation (when an environment is
  /// attached), lifetime clamping, precert + cert CT submission.
  IssuanceOutcome issue(const IssuanceRequest& request);

  /// Issues without validation — used by managed-TLS providers issuing for
  /// enrolled customers through their own CA, and by tests.
  x509::Certificate issue_unchecked(const IssuanceRequest& request);

  /// Revokes a certificate; returns false if it was already revoked
  /// (revocation reasons are first-write-wins, as on real CRLs).
  bool revoke(const x509::Certificate& cert, util::Date date,
              revocation::ReasonCode reason);
  [[nodiscard]] bool is_revoked(const x509::Certificate& cert) const;

  /// The CRL this CA would publish on `date` (entries revoked up to then).
  [[nodiscard]] revocation::Crl crl_at(util::Date date) const;

  [[nodiscard]] std::uint64_t issued_count() const { return issued_count_; }
  [[nodiscard]] std::uint64_t revoked_count() const { return revoked_.size(); }
  [[nodiscard]] DvValidator& validator() { return validator_; }

 private:
  struct RevokedRecord {
    asn1::Bytes serial;
    util::Date date;
    revocation::ReasonCode reason;
  };

  CaProfile profile_;
  crypto::KeyPair issuing_key_;
  DvValidator validator_;
  ct::LogSet* logs_ = nullptr;
  const ValidationEnvironment* validation_env_ = nullptr;
  std::uint64_t next_serial_ = 1;
  std::uint64_t issued_count_ = 0;
  std::vector<RevokedRecord> revoked_;
};

}  // namespace stalecert::ca
