#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "stalecert/util/date.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::ca {

/// ACME-style domain-control challenge types (§2.2, Figure 1).
enum class ChallengeType : std::uint8_t {
  kHttp01,    // nonce served from a well-known HTTP path
  kDns01,     // nonce placed in a TXT record
  kTlsAlpn01, // nonce presented in a TLS ALPN handshake
  kEmail,     // nonce mailed to a WHOIS/SOA contact
};

std::string to_string(ChallengeType type);

/// An opaque actor in the simulation (registrant, CDN, attacker). Control
/// predicates are evaluated against the world's current state.
using ActorId = std::uint64_t;

/// Who currently controls what, from the CA's observable vantage point.
/// Implemented by the world simulator; tests use simple fakes.
class ValidationEnvironment {
 public:
  virtual ~ValidationEnvironment() = default;

  /// Can the actor publish DNS records under the domain (DNS-01, and the
  /// contact-based methods that rely on SOA/TXT/CAA)?
  [[nodiscard]] virtual bool controls_dns(const std::string& domain,
                                          ActorId actor) const = 0;
  /// Does the actor operate the web server that external HTTP(S)
  /// connections for the domain reach (HTTP-01 / TLS-ALPN-01)?
  [[nodiscard]] virtual bool controls_web(const std::string& domain,
                                          ActorId actor) const = 0;
};

/// Result of a validation attempt.
struct ValidationResult {
  bool ok = false;
  bool reused = false;            // satisfied from the reuse cache
  std::uint64_t nonce = 0;        // the challenge token that was exchanged
};

/// Performs DV identity verification with the per-(account, domain) reuse
/// cache the Baseline Requirements allow: evidence of control may be
/// reused for up to 398 days, which can make certificates stale from the
/// moment of issuance (§4.4 "Domain validation reuse").
class DvValidator {
 public:
  struct Options {
    std::int64_t reuse_window_days = 398;
    bool allow_reuse = true;
  };

  explicit DvValidator(std::uint64_t seed) : rng_(seed) {}
  DvValidator(std::uint64_t seed, Options options) : rng_(seed), options_(options) {}

  ValidationResult validate(const ValidationEnvironment& env,
                            const std::string& domain, ActorId account,
                            ChallengeType challenge, util::Date date);

  [[nodiscard]] std::uint64_t fresh_validations() const { return fresh_; }
  [[nodiscard]] std::uint64_t reused_validations() const { return reused_; }

 private:
  util::Rng rng_;
  Options options_;
  // (account, domain) -> date of last successful fresh validation
  std::map<std::pair<ActorId, std::string>, util::Date> cache_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace stalecert::ca
