#pragma once

#include <optional>
#include <vector>

#include "stalecert/ca/authority.hpp"

namespace stalecert::ca {

/// RFC 8739 STAR: Short-Term, Automatically Renewed certificates (the
/// paper cites this as the issuance-automation path that makes very short
/// lifetimes operationally viable, §6/§7.2). One recurring-order
/// authorization covers a whole series of short-lived certificates that
/// the CA pre-issues on a fixed cadence; the subscriber just fetches the
/// current one. Because each certificate lives only days, a stale one is
/// abusable for days at most — and there is no revocation to get right.
class StarIssuer {
 public:
  struct Options {
    std::int64_t cert_lifetime_days = 7;
    /// New certificate every `renewal_interval_days` (< lifetime so
    /// consecutive certs overlap and rollover is seamless).
    std::int64_t renewal_interval_days = 3;
    /// The recurring order itself expires (re-authorization required),
    /// bounding how long unattended issuance can continue.
    std::int64_t order_lifetime_days = 365;
  };

  /// Starts a recurring order. The CA's validation environment is
  /// consulted once at order time (like ACME pre-authorization).
  StarIssuer(CertificateAuthority* ca, std::vector<std::string> domains,
             crypto::KeyPair subscriber_key, ActorId account, util::Date start,
             Options options);

  /// Advances pre-issuance up to `now`; returns newly issued certificates.
  std::vector<x509::Certificate> advance_to(util::Date now);

  /// The certificate the subscriber should currently serve (latest issued
  /// covering `now`), if the order is still live.
  [[nodiscard]] std::optional<x509::Certificate> current(util::Date now) const;

  /// Subscriber cancels the recurring order (e.g. before migrating away):
  /// pre-issuance stops immediately. Already-issued certificates keep
  /// their (short) remaining validity — the residual exposure window.
  void terminate(util::Date now);

  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] util::Date order_expiry() const { return order_expiry_; }
  [[nodiscard]] const std::vector<x509::Certificate>& issued() const {
    return issued_;
  }

 private:
  CertificateAuthority* ca_;
  std::vector<std::string> domains_;
  crypto::KeyPair key_;
  ActorId account_;
  Options options_;
  util::Date next_issue_;
  util::Date order_expiry_;
  bool terminated_ = false;
  std::vector<x509::Certificate> issued_;
};

}  // namespace stalecert::ca
