#include "stalecert/ca/dv.hpp"

#include "stalecert/util/strings.hpp"

namespace stalecert::ca {

std::string to_string(ChallengeType type) {
  switch (type) {
    case ChallengeType::kHttp01: return "http-01";
    case ChallengeType::kDns01: return "dns-01";
    case ChallengeType::kTlsAlpn01: return "tls-alpn-01";
    case ChallengeType::kEmail: return "email";
  }
  return "?";
}

ValidationResult DvValidator::validate(const ValidationEnvironment& env,
                                       const std::string& domain, ActorId account,
                                       ChallengeType challenge, util::Date date) {
  const std::string lowered = util::to_lower(domain);
  ValidationResult result;
  result.nonce = rng_.next();

  if (options_.allow_reuse) {
    const auto it = cache_.find({account, lowered});
    if (it != cache_.end() && date - it->second <= options_.reuse_window_days &&
        date >= it->second) {
      ++reused_;
      result.ok = true;
      result.reused = true;
      return result;
    }
  }

  bool controlled = false;
  switch (challenge) {
    case ChallengeType::kDns01:
    case ChallengeType::kEmail:
      controlled = env.controls_dns(lowered, account);
      break;
    case ChallengeType::kHttp01:
    case ChallengeType::kTlsAlpn01:
      controlled = env.controls_web(lowered, account);
      break;
  }
  if (!controlled) return result;

  ++fresh_;
  cache_[{account, lowered}] = date;
  result.ok = true;
  return result;
}

}  // namespace stalecert::ca
