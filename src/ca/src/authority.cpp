#include "stalecert/ca/authority.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"

namespace stalecert::ca {

std::int64_t cab_forum_max_lifetime(util::Date date) {
  static const util::Date kBallot193 = util::Date::from_ymd(2018, 3, 1);
  static const util::Date kBrowser398 = util::Date::from_ymd(2020, 9, 1);
  if (date < kBallot193) return 39 * 31;  // ~39 months
  if (date < kBrowser398) return 825;
  return 398;
}

CertificateAuthority::CertificateAuthority(CaProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      issuing_key_(crypto::KeyPair::derive("ca/" + profile_.name,
                                           crypto::KeyAlgorithm::kEcdsaP384)),
      validator_(seed) {}

x509::DistinguishedName CertificateAuthority::issuer_dn() const {
  return {profile_.name, profile_.organization, profile_.country};
}

std::int64_t CertificateAuthority::max_lifetime_at(util::Date date) const {
  const std::int64_t forum = cab_forum_max_lifetime(date);
  if (profile_.self_imposed_max_days) {
    return std::min(forum, *profile_.self_imposed_max_days);
  }
  return forum;
}

IssuanceOutcome CertificateAuthority::issue(const IssuanceRequest& request) {
  IssuanceOutcome outcome;
  if (request.domains.empty()) {
    outcome.error = {IssuanceError::Kind::kNoDomains, "no domains requested"};
    return outcome;
  }
  if (validation_env_) {
    for (const auto& domain : request.domains) {
      // Wildcard names are validated against their base domain via DNS-01
      // (ACME policy: wildcards require DNS challenges).
      std::string target = domain;
      ChallengeType challenge = request.challenge;
      if (target.starts_with("*.")) {
        target = target.substr(2);
        challenge = ChallengeType::kDns01;
      }
      const ValidationResult result = validator_.validate(
          *validation_env_, target, request.account, challenge, request.date);
      if (!result.ok) {
        outcome.error = {IssuanceError::Kind::kValidationFailed,
                         "failed " + to_string(challenge) + " for " + domain};
        return outcome;
      }
      outcome.validation_reused = outcome.validation_reused || result.reused;
    }
  }
  outcome.certificate = issue_unchecked(request);
  return outcome;
}

x509::Certificate CertificateAuthority::issue_unchecked(const IssuanceRequest& request) {
  if (request.domains.empty()) throw LogicError("issue_unchecked: no domains");
  const std::int64_t days =
      std::min(request.requested_days.value_or(profile_.default_days),
               max_lifetime_at(request.date));

  x509::CertificateBuilder builder;
  builder.serial(next_serial_++)
      .issuer(issuer_dn())
      .subject_cn(request.domains.front())
      .validity(request.date, request.date + days)
      .key(request.subscriber_key)
      .dns_names(request.domains)
      .authority_key_id(issuing_key_.key_id())
      .server_auth_profile()
      .policy(asn1::Oid{2, 23, 140, 1, 2, 1});  // CA/B DV policy OID
  if (!profile_.crl_url.empty()) {
    builder.crl_url(profile_.crl_url);
    builder.ocsp_url("http://ocsp." + profile_.name);
  }

  if (logs_) {
    // Submit the precertificate, then embed the returned SCT log ids.
    x509::CertificateBuilder precert_builder = builder;
    const x509::Certificate precert =
        precert_builder.precert_poison(true).build();
    const auto scts = logs_->submit(precert, request.date);
    std::vector<std::uint64_t> ids;
    ids.reserve(scts.size());
    for (const auto& sct : scts) ids.push_back(sct.log_id);
    builder.sct_log_ids(std::move(ids));
  }
  const x509::Certificate cert = builder.build();
  if (logs_) logs_->submit(cert, request.date);
  ++issued_count_;
  return cert;
}

bool CertificateAuthority::revoke(const x509::Certificate& cert, util::Date date,
                                  revocation::ReasonCode reason) {
  if (is_revoked(cert)) return false;
  revoked_.push_back({cert.serial(), date, reason});
  return true;
}

bool CertificateAuthority::is_revoked(const x509::Certificate& cert) const {
  return std::any_of(revoked_.begin(), revoked_.end(), [&](const auto& r) {
    return r.serial == cert.serial();
  });
}

revocation::Crl CertificateAuthority::crl_at(util::Date date) const {
  revocation::Crl crl(issuer_dn(), issuing_key_.key_id(), date, date + 7);
  for (const auto& record : revoked_) {
    if (record.date <= date) {
      crl.add({record.serial, record.date, record.reason});
    }
  }
  return crl;
}

}  // namespace stalecert::ca
