#include "stalecert/ca/star.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::ca {

StarIssuer::StarIssuer(CertificateAuthority* ca, std::vector<std::string> domains,
                       crypto::KeyPair subscriber_key, ActorId account,
                       util::Date start, Options options)
    : ca_(ca),
      domains_(std::move(domains)),
      key_(subscriber_key),
      account_(account),
      options_(options),
      next_issue_(start),
      order_expiry_(start + options.order_lifetime_days) {
  if (!ca_) throw LogicError("StarIssuer: null CA");
  if (domains_.empty()) throw LogicError("StarIssuer: no domains");
  if (options_.renewal_interval_days < 1 ||
      options_.renewal_interval_days > options_.cert_lifetime_days) {
    throw LogicError("StarIssuer: renewal interval must be in [1, lifetime]");
  }
}

std::vector<x509::Certificate> StarIssuer::advance_to(util::Date now) {
  std::vector<x509::Certificate> fresh;
  while (!terminated_ && next_issue_ <= now && next_issue_ < order_expiry_) {
    IssuanceRequest request;
    request.domains = domains_;
    request.subscriber_key = key_;
    request.account = account_;
    request.date = next_issue_;
    request.requested_days = options_.cert_lifetime_days;
    fresh.push_back(ca_->issue_unchecked(request));
    next_issue_ += options_.renewal_interval_days;
  }
  issued_.insert(issued_.end(), fresh.begin(), fresh.end());
  return fresh;
}

std::optional<x509::Certificate> StarIssuer::current(util::Date now) const {
  std::optional<x509::Certificate> best;
  for (const auto& cert : issued_) {
    if (!cert.valid_at(now)) continue;
    if (!best || cert.not_after() > best->not_after()) best = cert;
  }
  return best;
}

void StarIssuer::terminate(util::Date now) {
  terminated_ = true;
  order_expiry_ = std::min(order_expiry_, now);
}

}  // namespace stalecert::ca
