#include "stalecert/ca/acme.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::ca {

std::string to_string(OrderStatus status) {
  switch (status) {
    case OrderStatus::kPending: return "pending";
    case OrderStatus::kReady: return "ready";
    case OrderStatus::kValid: return "valid";
    case OrderStatus::kInvalid: return "invalid";
  }
  return "?";
}

std::string to_string(AuthzStatus status) {
  switch (status) {
    case AuthzStatus::kPending: return "pending";
    case AuthzStatus::kValid: return "valid";
    case AuthzStatus::kInvalid: return "invalid";
  }
  return "?";
}

AcmeServer::AcmeServer(CertificateAuthority* ca, std::uint64_t seed,
                       std::int64_t order_lifetime_days)
    : ca_(ca), rng_(seed), order_lifetime_days_(order_lifetime_days) {
  if (!ca_) throw LogicError("AcmeServer: null CA");
}

AccountId AcmeServer::new_account(ActorId actor, std::string contact,
                                  util::Date) {
  const AccountId id = next_account_++;
  accounts_.emplace(id, std::make_pair(actor, std::move(contact)));
  return id;
}

bool AcmeServer::account_exists(AccountId account) const {
  return accounts_.contains(account);
}

OrderId AcmeServer::new_order(AccountId account,
                              std::vector<std::string> identifiers,
                              util::Date now) {
  if (!accounts_.contains(account)) throw LogicError("ACME: unknown account");
  if (identifiers.empty()) throw LogicError("ACME: order without identifiers");

  AcmeOrder order;
  order.id = next_order_++;
  order.account = account;
  order.created = now;
  order.expires = now + order_lifetime_days_;
  for (auto& raw : identifiers) {
    order.identifiers.push_back(util::to_lower(raw));
  }

  // One authorization per unique base domain; wildcard identifiers force a
  // DNS-01-only authorization (RFC 8555 §7.4.1 + CA policy).
  for (const auto& identifier : order.identifiers) {
    const bool wildcard = util::starts_with(identifier, "*.");
    const std::string base = wildcard ? identifier.substr(2) : identifier;
    auto existing = std::find_if(
        order.authorizations.begin(), order.authorizations.end(),
        [&](const AcmeAuthorization& a) { return a.domain == base; });
    if (existing != order.authorizations.end()) {
      existing->wildcard = existing->wildcard || wildcard;
      if (existing->wildcard) {
        std::erase_if(existing->challenges, [](const AcmeChallenge& c) {
          return c.type != ChallengeType::kDns01;
        });
      }
      continue;
    }
    AcmeAuthorization authz;
    authz.domain = base;
    authz.wildcard = wildcard;
    if (wildcard) {
      authz.challenges.push_back({ChallengeType::kDns01, rng_.next(), false});
    } else {
      authz.challenges.push_back({ChallengeType::kHttp01, rng_.next(), false});
      authz.challenges.push_back({ChallengeType::kDns01, rng_.next(), false});
      authz.challenges.push_back({ChallengeType::kTlsAlpn01, rng_.next(), false});
    }
    order.authorizations.push_back(std::move(authz));
  }

  const OrderId id = order.id;
  orders_.emplace(id, std::move(order));
  return id;
}

AcmeOrder& AcmeServer::require_order(OrderId id) {
  const auto it = orders_.find(id);
  if (it == orders_.end()) throw LogicError("ACME: unknown order");
  return it->second;
}

const AcmeOrder& AcmeServer::order(OrderId id) const {
  const auto it = orders_.find(id);
  if (it == orders_.end()) throw LogicError("ACME: unknown order");
  return it->second;
}

void AcmeServer::refresh_order_status(AcmeOrder& order, util::Date now) {
  if (order.status == OrderStatus::kValid || order.status == OrderStatus::kInvalid) {
    return;
  }
  if (now >= order.expires) {
    order.status = OrderStatus::kInvalid;
    return;
  }
  const bool all_valid = std::all_of(
      order.authorizations.begin(), order.authorizations.end(),
      [](const AcmeAuthorization& a) { return a.status == AuthzStatus::kValid; });
  const bool any_invalid = std::any_of(
      order.authorizations.begin(), order.authorizations.end(),
      [](const AcmeAuthorization& a) { return a.status == AuthzStatus::kInvalid; });
  if (any_invalid) {
    order.status = OrderStatus::kInvalid;
  } else if (all_valid) {
    order.status = OrderStatus::kReady;
  }
}

bool AcmeServer::respond_challenge(OrderId id, const std::string& domain,
                                   ChallengeType type, ActorId actor,
                                   util::Date now) {
  AcmeOrder& order = require_order(id);
  refresh_order_status(order, now);
  if (order.status == OrderStatus::kInvalid) return false;

  const auto& account = accounts_.at(order.account);
  // The responding actor must be the account holder (key authorization
  // string binds challenge responses to the account key).
  if (account.first != actor) return false;

  const std::string base = util::to_lower(domain);
  const auto authz_it = std::find_if(
      order.authorizations.begin(), order.authorizations.end(),
      [&](const AcmeAuthorization& a) { return a.domain == base; });
  if (authz_it == order.authorizations.end()) return false;
  if (authz_it->status == AuthzStatus::kValid) return true;

  const auto challenge_it =
      std::find_if(authz_it->challenges.begin(), authz_it->challenges.end(),
                   [&](const AcmeChallenge& c) { return c.type == type; });
  if (challenge_it == authz_it->challenges.end()) return false;  // e.g. wildcard+http

  const auto* env = ca_->validation_environment();
  bool controlled = false;
  if (env) {
    switch (type) {
      case ChallengeType::kDns01:
      case ChallengeType::kEmail:
        controlled = env->controls_dns(base, actor);
        break;
      case ChallengeType::kHttp01:
      case ChallengeType::kTlsAlpn01:
        controlled = env->controls_web(base, actor);
        break;
    }
  } else {
    controlled = true;  // no environment attached: open CA (tests)
  }

  challenge_it->completed = controlled;
  authz_it->status = controlled ? AuthzStatus::kValid : AuthzStatus::kInvalid;
  refresh_order_status(order, now);
  return controlled;
}

std::optional<x509::Certificate> AcmeServer::finalize(OrderId id,
                                                      const crypto::KeyPair& key,
                                                      util::Date now) {
  AcmeOrder& order = require_order(id);
  refresh_order_status(order, now);
  if (order.status != OrderStatus::kReady) {
    if (order.status == OrderStatus::kPending) order.status = OrderStatus::kInvalid;
    return std::nullopt;
  }

  IssuanceRequest request;
  request.domains = order.identifiers;
  request.subscriber_key = key;
  request.account = accounts_.at(order.account).first;
  request.date = now;
  // Validation already happened through the challenges above.
  const x509::Certificate cert = ca_->issue_unchecked(request);
  order.certificate = cert;
  order.status = OrderStatus::kValid;
  ++issued_;
  return cert;
}

}  // namespace stalecert::ca
