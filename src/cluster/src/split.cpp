#include "stalecert/cluster/split.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "stalecert/feed/format.hpp"
#include "stalecert/query/shard.hpp"
#include "stalecert/store/filter.hpp"

namespace stalecert::cluster {

namespace {

/// Binary (authority key id || serial) join key — the same composition
/// store::filter_world and the RevocationStore use.
std::string join_key(const crypto::Digest& aki, const asn1::Bytes& serial) {
  std::string key;
  key.reserve(aki.size() + serial.size());
  key.append(reinterpret_cast<const char*>(aki.data()), aki.size());
  key.append(reinterpret_cast<const char*>(serial.data()), serial.size());
  return key;
}

}  // namespace

store::LoadedWorld shard_world(const store::LoadedWorld& world,
                               const ShardPlan& plan, unsigned index) {
  return query::apply_shard_filter(world, plan.scope_for(index));
}

std::vector<std::string> write_shard_archives(const store::LoadedWorld& world,
                                              const ShardPlan& plan,
                                              const std::string& dir,
                                              obs::PipelineObserver* observer) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  paths.reserve(plan.count());
  for (unsigned k = 0; k < plan.count(); ++k) {
    const std::string path =
        (std::filesystem::path(dir) /
         ShardPlan::archive_name(k, plan.count()))
            .string();
    store::save_world(shard_world(world, plan, k), path, observer);
    paths.push_back(path);
  }
  return paths;
}

DeltaSplitter::DeltaSplitter(const store::LoadedWorld& base,
                             const ShardPlan& plan)
    : plan_(plan) {
  shard_meta_.reserve(plan_.count());
  log_sizes_.resize(plan_.count());
  for (unsigned k = 0; k < plan_.count(); ++k) {
    store::ArchiveMeta meta = base.meta;
    meta.profile += "#shard-" + ShardRef{k, plan_.count()}.label();
    feed::DeltaMeta delta_meta;
    delta_meta.base_world_id = feed::world_id(meta);
    delta_meta.profile = meta.profile;
    delta_meta.seed = meta.seed;
    shard_meta_.push_back(std::move(delta_meta));
  }
  // Replay the static split's routing to seed the per-shard log sizes and
  // the certificate location map without materializing N filtered worlds.
  for (const auto& log : base.ct_logs.logs()) {
    for (auto& sizes : log_sizes_) sizes.emplace(log.id(), 0);
    for (const auto& entry : log.entries()) {
      const auto shards = plan_.shards_for_certificate(entry.certificate);
      for (const unsigned k : shards) ++log_sizes_[k][log.id()];
      if (const auto issuer_serial = entry.certificate.issuer_serial()) {
        auto& holders = cert_shards_[join_key(issuer_serial->authority_key_id,
                                              issuer_serial->serial)];
        for (const unsigned k : shards) {
          if (std::find(holders.begin(), holders.end(), k) == holders.end()) {
            holders.push_back(k);
          }
        }
      }
    }
  }
}

std::vector<feed::WorldDelta> DeltaSplitter::split(
    const feed::WorldDelta& delta) {
  std::vector<feed::WorldDelta> out(plan_.count());
  for (unsigned k = 0; k < plan_.count(); ++k) {
    out[k].meta = shard_meta_[k];
    out[k].meta.from_day = delta.meta.from_day;
    out[k].meta.to_day = delta.meta.to_day;
    out[k].stats = delta.stats;
  }

  // CT first: revocation routing below consults the location map, and a
  // cert and its revocation may share a delta.
  for (const auto& log_delta : delta.ct) {
    std::vector<feed::CtLogDelta> per_shard(plan_.count());
    for (unsigned k = 0; k < plan_.count(); ++k) {
      per_shard[k].log_id = log_delta.log_id;
      per_shard[k].base_entry_count = log_sizes_[k][log_delta.log_id];
    }
    for (const auto& entry : log_delta.entries) {
      const auto shards = plan_.shards_for_certificate(entry.certificate);
      for (const unsigned k : shards) {
        ct::LogEntry routed = entry;
        // Shard-local dense index: this shard's log length so far.
        routed.index =
            per_shard[k].base_entry_count + per_shard[k].entries.size();
        per_shard[k].entries.push_back(std::move(routed));
      }
      if (const auto issuer_serial = entry.certificate.issuer_serial()) {
        auto& holders = cert_shards_[join_key(issuer_serial->authority_key_id,
                                              issuer_serial->serial)];
        for (const unsigned k : shards) {
          if (std::find(holders.begin(), holders.end(), k) == holders.end()) {
            holders.push_back(k);
          }
        }
      }
    }
    for (unsigned k = 0; k < plan_.count(); ++k) {
      log_sizes_[k][log_delta.log_id] += per_shard[k].entries.size();
      if (!per_shard[k].entries.empty()) {
        out[k].ct.push_back(std::move(per_shard[k]));
      }
    }
  }

  for (const auto& entry : delta.revocations) {
    const auto it = cert_shards_.find(join_key(entry.authority_key_id,
                                               entry.serial));
    if (it != cert_shards_.end()) {
      for (const unsigned k : it->second) out[k].revocations.push_back(entry);
    } else {
      out[plan_.shard_for_serial(entry.serial)].revocations.push_back(entry);
    }
  }

  for (const auto& event : delta.registrations) {
    out[plan_.shard_for_domain(event.domain)].registrations.push_back(event);
  }

  // Every shard gets every day, filtered: the departure detector diffs
  // consecutive days and the applier enforces a contiguous day chain.
  for (const auto& day : delta.adns) {
    for (unsigned k = 0; k < plan_.count(); ++k) {
      dns::DailySnapshot snapshot;
      snapshot.date = day.date;
      for (const auto& [domain, records] : day.records) {
        if (plan_.shard_for_domain(domain) == k) {
          snapshot.records.emplace(domain, records);
        }
      }
      out[k].adns.push_back(std::move(snapshot));
    }
  }

  return out;
}

}  // namespace stalecert::cluster
