#include "stalecert/cluster/shard.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "stalecert/util/strings.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::cluster {

namespace {

constexpr unsigned kMaxShards = 1024;

bool parse_component(const std::string& text, unsigned long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::optional<ShardRef> ShardRef::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  unsigned long index = 0;
  unsigned long count = 0;
  if (!parse_component(text.substr(0, slash), &index) ||
      !parse_component(text.substr(slash + 1), &count)) {
    return std::nullopt;
  }
  if (count == 0 || count > kMaxShards || index >= count) return std::nullopt;
  return ShardRef{static_cast<unsigned>(index), static_cast<unsigned>(count)};
}

ShardPlan::ShardPlan(unsigned shard_count) : count_(shard_count) {
  if (shard_count == 0 || shard_count > kMaxShards) {
    throw std::invalid_argument("ShardPlan: shard count " +
                                std::to_string(shard_count) +
                                " out of range [1, " +
                                std::to_string(kMaxShards) + "]");
  }
}

unsigned ShardPlan::shard_for_domain(const std::string& name) const {
  return shard_for_key(query::routing_domain(name));
}

std::vector<unsigned> ShardPlan::shards_for_names(
    const std::vector<std::string>& names) const {
  std::vector<unsigned> shards;
  if (names.empty()) {
    shards.push_back(shard_for_domain(std::string{}));
    return shards;
  }
  shards.reserve(names.size());
  for (const auto& name : names) shards.push_back(shard_for_domain(name));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

unsigned ShardPlan::shard_for_serial(const asn1::Bytes& serial) const {
  return shard_for_key(std::string_view(
      reinterpret_cast<const char*>(serial.data()), serial.size()));
}

std::vector<unsigned> ShardPlan::shards_for_certificate(
    const x509::Certificate& cert) const {
  std::vector<unsigned> shards = shards_for_names(cert.dns_names());
  shards.push_back(shard_for_key(util::to_lower(cert.serial_hex())));
  shards.push_back(shard_for_key(cert.subject_key().fingerprint_hex()));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

query::ShardScope ShardPlan::scope_for(unsigned index) const {
  if (index >= count_) {
    throw std::invalid_argument("ShardPlan: shard " + std::to_string(index) +
                                " out of range for " + std::to_string(count_) +
                                " shards");
  }
  query::ShardScope scope;
  const unsigned count = count_;
  scope.filter.keep_domain = [index, count](const std::string& name) {
    return fnv1a64(query::routing_domain(name)) % count == index;
  };
  scope.filter.keep_certificate_extra =
      [index, count](const x509::Certificate& cert) {
        return fnv1a64(util::to_lower(cert.serial_hex())) % count == index ||
               fnv1a64(cert.subject_key().fingerprint_hex()) % count == index;
      };
  scope.filter.keep_unmatched_revocation =
      [index, count](const crypto::Digest&, const asn1::Bytes& serial) {
        const std::string_view bytes(
            reinterpret_cast<const char*>(serial.data()), serial.size());
        return fnv1a64(bytes) % count == index;
      };
  scope.owns = [index, count](const std::string& routing_key) {
    return fnv1a64(routing_key) % count == index;
  };
  scope.label = ShardRef{index, count}.label();
  return scope;
}

std::string ShardPlan::archive_name(unsigned index, unsigned count) {
  return "shard-" + std::to_string(index) + "-of-" + std::to_string(count) +
         ".scw";
}

std::string ShardPlan::shard_dir_name(unsigned index, unsigned count) {
  return "shard-" + std::to_string(index) + "-of-" + std::to_string(count);
}

}  // namespace stalecert::cluster
