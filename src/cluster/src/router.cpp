#include "stalecert/cluster/router.hpp"

#include <unistd.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "stalecert/obs/exposition.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::cluster {

namespace {

using Clock = std::chrono::steady_clock;
using query::HttpRequest;
using query::HttpResponse;

/// Same bucket layout as staled's request histograms so the two tiers'
/// latency quantiles are directly comparable.
std::vector<double> latency_bounds() {
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0};
}

std::vector<double> fanout_bounds() { return {1, 2, 3, 4, 6, 8, 12, 16}; }

HttpResponse shard_unavailable(unsigned shard, unsigned count) {
  HttpResponse response{
      503, "application/json",
      "{\"error\":\"shard " + ShardRef{shard, count}.label() +
          " unavailable after retry\"}\n"};
  response.headers["Retry-After"] = "1";
  return response;
}

/// Extracts the bracketed text of `"<key>":[...]` (exclusive of the outer
/// brackets); nullopt when the key is absent or unterminated.
std::optional<std::string> extract_json_array(std::string_view body,
                                              std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":[";
  const auto at = body.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  int depth = 1;
  bool in_string = false;
  for (std::size_t i = begin; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (--depth == 0) return std::string(body.substr(begin, i - begin));
    }
  }
  return std::nullopt;
}

/// Extracts the raw text of `"<key>":{...}` (exclusive of the braces).
std::optional<std::string> extract_json_object(std::string_view body,
                                               std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":{";
  const auto at = body.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const auto end = body.find('}', begin);  // flat objects only
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(body.substr(begin, end - begin));
}

/// Extracts the string value of `"<key>":"..."` (raw, still escaped).
std::optional<std::string> extract_json_string(std::string_view body,
                                               std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto at = body.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  std::string out;
  for (std::size_t i = begin; i < body.size(); ++i) {
    if (body[i] == '\\' && i + 1 < body.size()) {
      out.push_back(body[i]);
      out.push_back(body[i + 1]);
      ++i;
      continue;
    }
    if (body[i] == '"') return out;
    out.push_back(body[i]);
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::string> split_json_array(std::string_view array_text) {
  std::vector<std::string> elements;
  std::size_t element_begin = 0;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < array_text.size(); ++i) {
    const char c = array_text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[':
      case '{': ++depth; break;
      case ']':
      case '}': --depth; break;
      case ',':
        if (depth == 0) {
          elements.emplace_back(array_text.substr(element_begin,
                                                  i - element_begin));
          element_begin = i + 1;
        }
        break;
      default: break;
    }
  }
  if (element_begin < array_text.size()) {
    elements.emplace_back(array_text.substr(element_begin));
  }
  return elements;
}

std::optional<std::uint64_t> extract_json_uint(std::string_view body,
                                               std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto at = body.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= body.size() || body[i] < '0' || body[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  for (; i < body.size() && body[i] >= '0' && body[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(body[i] - '0');
  }
  return value;
}

std::string merge_summary_bodies(const std::vector<std::string>& bodies,
                                 const std::vector<unsigned>& missing) {
  // The shard tag makes each shard's profile unique; the merged body
  // reports the world's own profile, which is the text before the tag.
  std::string profile = extract_json_string(bodies.front(), "profile")
                            .value_or("");
  if (const auto tag = profile.find("#shard-"); tag != std::string::npos) {
    profile.resize(tag);
  }

  std::uint64_t generation = 0;
  std::uint64_t certificates = 0;
  std::uint64_t stale_records = 0;
  std::uint64_t distinct_keys = 0;
  std::uint64_t revoked_serials = 0;
  std::vector<std::string> class_names;
  std::vector<std::uint64_t> class_counts;
  bool first = true;
  for (const auto& body : bodies) {
    const std::uint64_t g = extract_json_uint(body, "generation").value_or(0);
    generation = first ? g : std::min(generation, g);
    certificates += extract_json_uint(body, "certificates").value_or(0);
    stale_records += extract_json_uint(body, "stale_records").value_or(0);
    distinct_keys += extract_json_uint(body, "distinct_keys").value_or(0);
    revoked_serials += extract_json_uint(body, "revoked_serials").value_or(0);
    // by_class is a flat `"name":count` map with the same key order on
    // every shard (class order is fixed by the index, not the data).
    const auto by_class = extract_json_object(body, "by_class").value_or("");
    const auto entries = split_json_array(by_class);
    if (first) class_counts.assign(entries.size(), 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto colon = entries[i].rfind(':');
      if (colon == std::string::npos || i >= class_counts.size()) continue;
      if (first) class_names.push_back(entries[i].substr(0, colon));
      std::uint64_t value = 0;
      for (std::size_t j = colon + 1; j < entries[i].size(); ++j) {
        const char c = entries[i][j];
        if (c < '0' || c > '9') break;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
      class_counts[i] += value;
    }
    first = false;
  }

  std::ostringstream out;
  out << "{\"profile\":\"" << profile << "\",\"seed\":"
      << extract_json_uint(bodies.front(), "seed").value_or(0)
      << ",\"window\":{\"start\":\""
      << extract_json_string(bodies.front(), "start").value_or("")
      << "\",\"end\":\""
      << extract_json_string(bodies.front(), "end").value_or("")
      << "\"},\"generation\":" << generation
      << ",\"certificates\":" << certificates
      << ",\"stale_records\":" << stale_records << ",\"by_class\":{";
  for (std::size_t i = 0; i < class_names.size(); ++i) {
    if (i > 0) out << ",";
    out << class_names[i] << ":" << class_counts[i];
  }
  out << "},\"distinct_keys\":" << distinct_keys
      << ",\"revoked_serials\":" << revoked_serials;
  if (!missing.empty()) {
    out << ",\"partial\":true,\"shards_missing\":[";
    for (std::size_t i = 0; i < missing.size(); ++i) {
      if (i > 0) out << ",";
      out << missing[i];
    }
    out << "]";
  }
  out << "}\n";
  return out.str();
}

std::string merge_key_bodies(const std::vector<std::string>& bodies) {
  std::vector<std::string> certificates;
  for (const auto& body : bodies) {
    const auto array = extract_json_array(body, "certificates");
    if (!array || array->empty()) continue;
    for (auto& element : split_json_array(*array)) {
      certificates.push_back(std::move(element));
    }
  }
  std::sort(certificates.begin(), certificates.end());
  certificates.erase(std::unique(certificates.begin(), certificates.end()),
                     certificates.end());

  std::ostringstream out;
  out << "{\"spki\":\""
      << extract_json_string(bodies.front(), "spki").value_or("")
      << "\",\"certificates\":[";
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    if (i > 0) out << ",";
    out << certificates[i];
  }
  out << "]}\n";
  return out.str();
}

std::string merge_revocation_bodies(const std::vector<std::string>& bodies) {
  // Cross-CA serial collisions can put two different revocations for one
  // serial hex on two shards; single-node reports the earliest, so the
  // merge does too (ties fall back to the rendered body for determinism).
  const std::string* best = nullptr;
  std::string best_date;
  for (const auto& body : bodies) {
    if (body.find("\"revoked\":true") == std::string::npos) continue;
    const std::string date =
        extract_json_string(body, "revocation_date").value_or("9999-99-99");
    if (best == nullptr || date < best_date ||
        (date == best_date && body < *best)) {
      best = &body;
      best_date = date;
    }
  }
  return best != nullptr ? *best : bodies.front();
}

RouterService::RouterService(RouterOptions options)
    : options_(std::move(options)),
      plan_(static_cast<unsigned>(options_.shards.empty()
                                      ? 1
                                      : options_.shards.size())),
      started_(Clock::now()) {
  if (options_.shards.empty()) {
    throw std::invalid_argument("RouterService: no shard endpoints");
  }
  states_.reserve(options_.shards.size());
  for (std::size_t k = 0; k < options_.shards.size(); ++k) {
    states_.push_back(std::make_unique<ShardState>());
    const std::string shard = std::to_string(k);
    registry_
        .gauge("stalecert_router_shard_healthy", {{"shard", shard}},
               "1 while the shard answers, 0 after a failed exchange/probe")
        .set(1.0);
    registry_.counter("stalecert_router_shard_errors_total",
                      {{"shard", shard}},
                      "Failed exchanges with this shard (after retry)");
    registry_.histogram("stalecert_router_shard_request_seconds",
                        latency_bounds(), {{"shard", shard}},
                        "Per-shard forwarded request latency");
  }
  registry_.histogram("stalecert_router_fanout_shards", fanout_bounds(), {},
                      "Shards contacted per routed request");
}

RouterService::~RouterService() {
  stop();
  for (auto& state : states_) {
    const util::MutexLock lock(state->pool_mutex);
    for (const int fd : state->idle) ::close(fd);
    state->idle.clear();
  }
}

void RouterService::start() {
  if (options_.health_interval.count() <= 0 || probe_.joinable()) return;
  probe_ = std::thread([this] { probe_loop(); });
}

void RouterService::stop() {
  stopping_.store(true);
  if (probe_.joinable()) probe_.join();
}

void RouterService::probe_loop() {
  while (!stopping_.load()) {
    for (unsigned k = 0; k < shard_count() && !stopping_.load(); ++k) {
      // One fresh connection per probe (never pooled), single attempt.
      const std::vector<net::FetchSpec> spec = {
          {options_.shards[k].host, options_.shards[k].port, "/healthz", -1}};
      auto results = net::fetch_all(spec, options_.timeout, /*attempts=*/1);
      const bool up =
          results[0].outcome == net::FetchResult::Outcome::kOk &&
          results[0].status == 200;
      if (results[0].keep_fd >= 0) ::close(results[0].keep_fd);
      mark_shard(k, up, "probe");
    }
    // Sleep in short slices so stop() is prompt.
    auto remaining = options_.health_interval;
    while (remaining.count() > 0 && !stopping_.load()) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

void RouterService::mark_shard(unsigned shard, bool healthy,
                               const std::string& origin) {
  const bool was = states_[shard]->healthy.exchange(healthy,
                                                   std::memory_order_relaxed);
  if (was == healthy) return;
  registry_
      .gauge("stalecert_router_shard_healthy",
             {{"shard", std::to_string(shard)}})
      .set(healthy ? 1.0 : 0.0);
  const auto& endpoint = options_.shards[shard];
  const obs::LogFields fields = {
      {"shard", ShardRef{shard, shard_count()}.label()},
      {"endpoint", endpoint.host + ":" + std::to_string(endpoint.port)},
      {"origin", origin}};
  if (healthy) {
    log_.info("shard up", fields);
  } else {
    log_.warn("shard down", fields);
  }
}

std::vector<std::optional<net::FetchResult>> RouterService::exchange(
    const std::vector<unsigned>& shards, const std::string& target) {
  // Check a pooled keep-alive socket out per leg; net::fetch_all owns it
  // from here (a failed attempt closes it and retries on a fresh
  // connection — the benign server-closed-idle-connection case).
  std::vector<net::FetchSpec> specs;
  specs.reserve(shards.size());
  for (const unsigned shard : shards) {
    auto& state = *states_[shard];
    int reuse = -1;
    {
      const util::MutexLock lock(state.pool_mutex);
      if (!state.idle.empty()) {
        reuse = state.idle.back();
        state.idle.pop_back();
      }
    }
    specs.push_back({options_.shards[shard].host, options_.shards[shard].port,
                     target, reuse});
  }

  // Every leg flies at once on one event loop, each under the full
  // per-shard deadline; the gather takes max(legs), not sum(legs).
  auto raw = net::fetch_all(specs, options_.timeout, /*attempts=*/2);

  std::vector<std::optional<net::FetchResult>> results(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const unsigned shard = shards[i];
    auto& leg = raw[i];
    if (leg.outcome == net::FetchResult::Outcome::kOk) {
      registry_
          .histogram("stalecert_router_shard_request_seconds",
                     latency_bounds(), {{"shard", std::to_string(shard)}})
          .observe(std::chrono::duration<double>(leg.elapsed).count());
      if (leg.keep_fd >= 0) {
        auto& state = *states_[shard];
        const util::MutexLock lock(state.pool_mutex);
        state.idle.push_back(leg.keep_fd);
        leg.keep_fd = -1;
      }
      mark_shard(shard, true, "request");
      results[i] = std::move(leg);
    } else {
      registry_
          .counter("stalecert_router_shard_errors_total",
                   {{"shard", std::to_string(shard)}})
          .inc();
      mark_shard(shard, false, "request");
    }
  }
  return results;
}

std::optional<net::FetchResult> RouterService::fetch(
    unsigned shard, const std::string& target) {
  return std::move(exchange({shard}, target)[0]);
}

std::vector<std::optional<net::FetchResult>> RouterService::scatter(
    const std::string& target) {
  std::vector<unsigned> all(shard_count());
  for (unsigned k = 0; k < shard_count(); ++k) all[k] = k;
  return exchange(all, target);
}

HttpResponse RouterService::forward_point(unsigned shard,
                                          const HttpRequest& request) {
  const auto result = fetch(shard, request.target);
  if (!result) return shard_unavailable(shard, shard_count());
  return {result->status, result->content_type, result->body};
}

HttpResponse RouterService::gather_summary() {
  const auto results = scatter("/v1/summary");
  std::vector<std::string> bodies;
  std::vector<unsigned> missing;
  for (unsigned k = 0; k < shard_count(); ++k) {
    if (results[k] && results[k]->status == 200) {
      bodies.push_back(results[k]->body);
    } else {
      missing.push_back(k);
    }
  }
  if (bodies.empty()) {
    HttpResponse response{503, "application/json",
                          "{\"error\":\"no shard answered\"}\n"};
    response.headers["Retry-After"] = "1";
    return response;
  }
  return {200, "application/json", merge_summary_bodies(bodies, missing)};
}

HttpResponse RouterService::gather_key(const std::string& target) {
  const auto results = scatter(target);
  std::vector<std::string> bodies;
  for (unsigned k = 0; k < shard_count(); ++k) {
    // Fail closed: the certificate set is a union, and ANY missing shard
    // may hold members the others do not.
    if (!results[k]) return shard_unavailable(k, shard_count());
    bodies.push_back(results[k]->body);
    if (results[k]->status != 200) {
      return {results[k]->status, results[k]->content_type, results[k]->body};
    }
  }
  return {200, "application/json", merge_key_bodies(bodies)};
}

HttpResponse RouterService::gather_revocation(const std::string& target) {
  const auto results = scatter(target);
  std::vector<std::string> bodies;
  for (unsigned k = 0; k < shard_count(); ++k) {
    // Fail closed: a missing shard may hold the (earliest) revocation.
    if (!results[k]) return shard_unavailable(k, shard_count());
    bodies.push_back(results[k]->body);
    if (results[k]->status != 200) {
      return {results[k]->status, results[k]->content_type, results[k]->body};
    }
  }
  return {200, "application/json", merge_revocation_bodies(bodies)};
}

HttpResponse RouterService::statusz() {
  std::ostringstream out;
  out << "{\"build\":\"" << query::json_escape(options_.build_info)
      << "\",\"uptime_seconds\":"
      << std::chrono::duration<double>(Clock::now() - started_).count()
      << ",\"shard_count\":" << shard_count() << ",\"shards\":[";
  const auto results = scatter("/statusz");
  for (unsigned k = 0; k < shard_count(); ++k) {
    if (k > 0) out << ",";
    const auto& endpoint = options_.shards[k];
    out << "{\"index\":" << k << ",\"endpoint\":\""
        << query::json_escape(endpoint.host + ":" +
                              std::to_string(endpoint.port))
        << "\"";
    if (results[k] && results[k]->status == 200) {
      out << ",\"healthy\":true,\"generation\":"
          << extract_json_uint(results[k]->body, "generation").value_or(0);
    } else {
      out << ",\"healthy\":false";
    }
    out << "}";
  }
  out << "],\"events\":[";
  const auto events = log_.tail(32);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    out << obs::to_jsonl(events[i]);
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

void RouterService::observe_request(const char* endpoint, int status,
                                    Clock::time_point start, unsigned fanout) {
  registry_
      .counter("stalecert_router_requests_total",
               {{"endpoint", endpoint}, {"code", std::to_string(status)}},
               "Requests routed, by endpoint and status code")
      .inc();
  registry_
      .histogram("stalecert_router_request_duration_seconds", latency_bounds(),
                 {{"endpoint", endpoint}}, "Routed request latency")
      .observe(std::chrono::duration<double>(Clock::now() - start).count());
  if (fanout > 0) {
    registry_.histogram("stalecert_router_fanout_shards", fanout_bounds(), {})
        .observe(static_cast<double>(fanout));
  }
}

HttpResponse RouterService::handle(const HttpRequest& request) {
  const auto start = Clock::now();
  const std::string& path = request.path;
  const char* endpoint = "other";
  unsigned fanout = 0;
  HttpResponse response;

  if (path == "/ingest") {
    endpoint = "ingest";
    response = {404, "application/json",
                "{\"error\":\"no ingest at the router: POST deltas to the "
                "owning shard's staled\"}\n"};
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = {405, "text/plain", "method not allowed\n"};
  } else if (path == "/healthz") {
    endpoint = "healthz";
    std::vector<unsigned> down;
    for (unsigned k = 0; k < shard_count(); ++k) {
      if (!shard_healthy(k)) down.push_back(k);
    }
    if (down.empty()) {
      response = {200, "text/plain", "ok\n"};
    } else {
      std::ostringstream out;
      out << "degraded: shards down:";
      for (const unsigned k : down) out << " " << k;
      out << "\n";
      response = {503, "text/plain", out.str()};
    }
  } else if (path == "/metrics") {
    endpoint = "metrics";
    response = {200, "text/plain; version=0.0.4",
                obs::to_prometheus(registry_.snapshot())};
  } else if (path == "/statusz") {
    endpoint = "statusz";
    fanout = shard_count();
    response = statusz();
  } else if (path == "/v1/stale") {
    endpoint = "stale";
    fanout = 1;
    const auto domain = request.param("domain");
    // Without a domain any shard reproduces the single-node 400.
    const unsigned shard =
        domain && !domain->empty() ? plan_.shard_for_domain(*domain) : 0;
    response = forward_point(shard, request);
  } else if (path == "/v1/summary") {
    const auto domain = request.param("domain");
    if (domain && !domain->empty()) {
      endpoint = "summary";
      fanout = 1;
      response = forward_point(plan_.shard_for_domain(*domain), request);
    } else {
      endpoint = "summary";
      fanout = shard_count();
      response = gather_summary();
    }
  } else if (util::starts_with(path, "/v1/key/")) {
    endpoint = "key";
    fanout = shard_count();
    response = gather_key(request.target);
  } else if (path == "/v1/revocation") {
    endpoint = "revocation";
    const auto serial = request.param("serial");
    if (serial && !serial->empty()) {
      fanout = shard_count();
      response = gather_revocation(request.target);
    } else {
      fanout = 1;
      response = forward_point(0, request);
    }
  } else {
    response = {404, "application/json", "{\"error\":\"no such endpoint\"}\n"};
  }

  observe_request(endpoint, response.status, start, fanout);
  return response;
}

}  // namespace stalecert::cluster
