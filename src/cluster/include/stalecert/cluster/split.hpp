#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/feed/delta.hpp"
#include "stalecert/store/archive.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::cluster {

/// One shard's slice of a world: query::apply_shard_filter under the
/// plan's scope — certificates replicated by name, per-domain rows on
/// their home shard, profile tagged "#shard-K/N".
store::LoadedWorld shard_world(const store::LoadedWorld& world,
                               const ShardPlan& plan, unsigned index);

/// Splits `world` into the plan's N shard archives inside `dir`
/// (ShardPlan::archive_name each). Returns the written paths, shard order.
std::vector<std::string> write_shard_archives(
    const store::LoadedWorld& world, const ShardPlan& plan,
    const std::string& dir, obs::PipelineObserver* observer = nullptr);

/// Routes full-world .scwd deltas into per-shard deltas that apply cleanly
/// to the plan's shard archives. Stateful: per-shard CT entry counts (a
/// shard delta's base_entry_count and entry indices are SHARD-local) and
/// the certificate location map advance with every split, so one splitter
/// must see a world's deltas in feed order.
///
/// Routing mirrors the static split: CT entries replicate to every shard
/// owning one of the certificate's names; revocations follow their
/// certificate (base or any previously split delta — a later cert for an
/// already-routed orphan cannot occur in feed order, since nothing revokes
/// before issuance); globally-orphaned revocations land on the serial-hash
/// shard; registrations go to the domain's home shard; every shard gets
/// every DNS day (filtered, possibly empty) so day chains stay contiguous;
/// cumulative stats replicate verbatim.
class DeltaSplitter {
 public:
  /// `base` is the FULL base world the incoming deltas extend (the same
  /// archive the shard archives were split from).
  DeltaSplitter(const store::LoadedWorld& base, const ShardPlan& plan);

  /// Splits one full-world delta into `plan.count()` shard deltas (shard
  /// order) and advances the splitter's state.
  std::vector<feed::WorldDelta> split(const feed::WorldDelta& delta);

 private:
  ShardPlan plan_;
  /// Per-shard delta meta template: shard-tagged profile and the SHARD
  /// archive's world id (so shard deltas never apply to the full world or
  /// to the wrong shard).
  std::vector<feed::DeltaMeta> shard_meta_;
  /// Per shard: CT log id -> current entry count on that shard.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> log_sizes_;
  /// Binary (AKI || serial) join key -> shards holding a matching
  /// certificate's log entry.
  std::unordered_map<std::string, std::vector<unsigned>> cert_shards_;
};

}  // namespace stalecert::cluster
