#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stalecert/cluster/shard.hpp"
#include "stalecert/net/fetch.hpp"
#include "stalecert/obs/event_log.hpp"
#include "stalecert/obs/metrics.hpp"
#include "stalecert/query/http.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::cluster {

/// One shard backend the router talks to. Position in RouterOptions::shards
/// IS the shard number: endpoint k must serve shard k/N of the same world.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  /// Shard backends in shard order; size() fixes N.
  std::vector<ShardEndpoint> shards;
  /// Per-shard request deadline: bounds connect and every socket exchange
  /// of one forwarded request (scatter legs each get the full deadline).
  std::chrono::milliseconds timeout{500};
  /// Background health-probe period; 0 disables the probe thread.
  std::chrono::milliseconds health_interval{1000};
  std::string build_info = "stalecert-staled-router/dev";
};

// --- Merge helpers (pure; unit-tested directly) ---------------------------

/// Splits the top-level elements of a rendered JSON array (the text between
/// its outer brackets) into one string per element. Only understands the
/// subset our serializers emit: objects/arrays nest, strings may contain
/// escaped quotes, commas separate at depth zero.
std::vector<std::string> split_json_array(std::string_view array_text);

/// Reads the integer immediately after `"<key>":`; nullopt when absent.
std::optional<std::uint64_t> extract_json_uint(std::string_view body,
                                               std::string_view key);

/// Merges per-shard GET /v1/summary bodies (owned-slice numbers) into the
/// single-node body: counts sum, generation is the minimum, the profile
/// drops its "#shard-K/N" tag. `missing` lists shards that did not answer
/// before the gather deadline; non-empty appends `"partial":true` and the
/// shard list instead of silently under-counting.
std::string merge_summary_bodies(const std::vector<std::string>& bodies,
                                 const std::vector<unsigned>& missing);

/// Merges per-shard GET /v1/key/<spki> bodies: union of the certificate
/// objects, sorted and deduplicated — replicas of one certificate render
/// identically on every shard, so the union collapses to the single-node
/// list byte for byte.
std::string merge_key_bodies(const std::vector<std::string>& bodies);

/// Merges per-shard GET /v1/revocation bodies: the earliest revocation
/// wins (ties broken by the rendered body, lexicographically); with no
/// revoked answer the first body (all "revoked":false bodies are
/// identical) passes through.
std::string merge_revocation_bodies(const std::vector<std::string>& bodies);

// --- The router -----------------------------------------------------------

/// staled-router's request handler: the scatter-gather front tier over N
/// shard staleds. Point lookups (/v1/stale, /v1/summary?domain=) forward to
/// the owning shard by routing-domain hash with one retry on a fresh
/// connection, then 503. Aggregates (/v1/key, /v1/revocation, global
/// /v1/summary) scatter to every shard under a per-shard deadline and
/// merge; a missing shard fails key/revocation closed (503 — the missing
/// shard may own the answer) and degrades the global summary to a
/// partial-flagged body. /ingest is 404 here: deltas go directly to their
/// shard's staled. /healthz, /metrics and /statusz describe the router
/// itself, including per-shard health.
///
/// Health: a background probe (start()) GETs each shard's /healthz every
/// health_interval; request-path failures also mark a shard down
/// immediately. Transitions emit event-log entries and flip the per-shard
/// health gauge; a down shard is still attempted on the request path (the
/// probe may lag a recovery) — health state feeds /healthz, /statusz and
/// the metrics, not request suppression.
class RouterService {
 public:
  explicit RouterService(RouterOptions options);
  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;
  ~RouterService();

  /// Starts the background health probe (no-op when health_interval is 0).
  void start();
  /// Stops the probe thread. Idempotent; the destructor calls it.
  void stop();

  /// Thread-safe request entry point (the HttpServer handler).
  [[nodiscard]] query::HttpResponse handle(const query::HttpRequest& request);

  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(options_.shards.size());
  }
  [[nodiscard]] bool shard_healthy(unsigned shard) const {
    return states_[shard]->healthy.load(std::memory_order_relaxed);
  }
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] obs::EventLog& log() { return log_; }

 private:
  struct ShardState {
    std::atomic<bool> healthy{true};
    /// Idle keep-alive sockets to this shard (owned fds from
    /// net::fetch_all), reused across requests; a failed exchange
    /// discards its connection instead of returning it.
    util::Mutex pool_mutex;
    std::vector<int> idle GUARDED_BY(pool_mutex);
  };

  /// One concurrent net::fetch_all pass over `shards` for `target`:
  /// pooled connections go out as reuse fds, survivors come back to the
  /// pool, per-shard health and metrics are updated. results[i] answers
  /// shards[i]; nullopt when that shard failed or missed the deadline
  /// (after the fresh-connection retry — the shard is marked down).
  std::vector<std::optional<net::FetchResult>> exchange(
      const std::vector<unsigned>& shards, const std::string& target);
  /// One GET against shard `shard` under the configured deadline.
  std::optional<net::FetchResult> fetch(unsigned shard,
                                        const std::string& target);
  /// Scatters `target` to every shard concurrently — one event loop
  /// issues all legs at once, each under the full deadline.
  std::vector<std::optional<net::FetchResult>> scatter(
      const std::string& target);

  query::HttpResponse forward_point(unsigned shard,
                                    const query::HttpRequest& request);
  query::HttpResponse gather_summary();
  query::HttpResponse gather_key(const std::string& target);
  query::HttpResponse gather_revocation(const std::string& target);
  query::HttpResponse statusz();

  void mark_shard(unsigned shard, bool healthy, const std::string& origin);
  void probe_loop();
  void observe_request(const char* endpoint, int status,
                       std::chrono::steady_clock::time_point start,
                       unsigned fanout);

  RouterOptions options_;
  /// unique_ptr per shard: ShardState holds a mutex and atomics, neither
  /// movable, and the vector is sized once in the constructor.
  std::vector<std::unique_ptr<ShardState>> states_;
  ShardPlan plan_;
  obs::MetricsRegistry registry_;
  obs::EventLog log_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<bool> stopping_{false};
  std::thread probe_;
};

}  // namespace stalecert::cluster
