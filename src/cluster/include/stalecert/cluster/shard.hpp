#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stalecert/asn1/der.hpp"
#include "stalecert/query/shard.hpp"

namespace stalecert::cluster {

/// FNV-1a 64 over arbitrary bytes — the cluster's one hash. Stable across
/// platforms and releases: shard archives written by one build must route
/// identically in every other, so this must never change.
std::uint64_t fnv1a64(std::string_view text);

/// One shard's identity within an N-way partition, parsed from and
/// formatted as "K/N" (K counts from 0). The same syntax staled's --shard
/// flag and the shard archive profile suffix use.
struct ShardRef {
  unsigned index = 0;
  unsigned count = 1;

  /// Parses "K/N"; nullopt unless K < N and 1 <= N <= 1024.
  static std::optional<ShardRef> parse(const std::string& text);
  [[nodiscard]] std::string label() const {
    return std::to_string(index) + "/" + std::to_string(count);
  }
};

/// The deterministic partition policy: which shard of N owns each routing
/// domain (see query::routing_domain — names reduce to their e2LD first).
/// Everything else in the cluster layer derives from this one mapping:
///
///   - a CERTIFICATE is replicated onto every shard owning any of its
///     names' routing domains (so every per-domain join stays local);
///   - WHOIS and DNS rows live only on their domain's home shard;
///   - a REVOCATION follows its certificate(s); one matching no
///     certificate at all is routed by a hash of its serial bytes;
///   - for global statistics each entity is ATTRIBUTED to exactly one
///     shard (StalenessIndex::owned_stats), so shard summaries sum to the
///     single-node numbers despite replication.
class ShardPlan {
 public:
  /// `shard_count` must be in [1, 1024]; throws std::invalid_argument
  /// otherwise.
  explicit ShardPlan(unsigned shard_count);

  [[nodiscard]] unsigned count() const { return count_; }

  /// Home shard of an already-reduced routing key (a routing_domain).
  [[nodiscard]] unsigned shard_for_key(std::string_view routing_key) const {
    return static_cast<unsigned>(fnv1a64(routing_key) % count_);
  }

  /// Home shard of a raw DNS name (reduces to the routing domain first).
  [[nodiscard]] unsigned shard_for_domain(const std::string& name) const;

  /// Every shard a certificate with these names is replicated onto,
  /// sorted, deduplicated. Empty name list routes like the empty name.
  [[nodiscard]] std::vector<unsigned> shards_for_names(
      const std::vector<std::string>& names) const;

  /// Every shard this certificate is replicated onto: its names' home
  /// shards PLUS the home shards of its lowercase serial hex and SPKI
  /// fingerprint hex. The extra two are what make the cluster's distinct
  /// counts exact: every certificate sharing a serial (cross-CA collision)
  /// or an SPKI co-locates on that key's home shard, so the home shard
  /// alone attributes the key (see StalenessIndex::owned_stats). A pure
  /// function of the certificate, so feed routing needs no global state.
  [[nodiscard]] std::vector<unsigned> shards_for_certificate(
      const x509::Certificate& cert) const;

  /// Routing for a revocation that matches no certificate anywhere: by a
  /// hash of the raw serial bytes, so every orphan lands on exactly one
  /// shard and merged revoked-serial counts stay exact.
  [[nodiscard]] unsigned shard_for_serial(const asn1::Bytes& serial) const;

  /// The full shard binding handed to query::apply_shard_filter and
  /// StalenessIndex::set_ownership for shard `index` of this plan.
  [[nodiscard]] query::ShardScope scope_for(unsigned index) const;

  /// Canonical shard archive file name: "shard-K-of-N.scw".
  [[nodiscard]] static std::string archive_name(unsigned index,
                                                unsigned count);
  /// Canonical per-shard feed subdirectory name ("shard-K-of-N"): shard K's
  /// staled polls <feed-root>/shard-K-of-N/ for its routed .scwd deltas,
  /// which keep the regular feed::delta_file_name inside it.
  [[nodiscard]] static std::string shard_dir_name(unsigned index,
                                                  unsigned count);

 private:
  unsigned count_;
};

}  // namespace stalecert::cluster
