#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/asn1/der.hpp"
#include "stalecert/crypto/sha256.hpp"

namespace stalecert::x509 {

/// RFC 5280 KeyUsage bits. The paper's taxonomy (Table 1) places these in
/// the "key authorization" category; a scope reduction of these bits is an
/// invalidation event (Table 2).
enum class KeyUsage : std::uint16_t {
  kDigitalSignature = 1 << 0,
  kNonRepudiation = 1 << 1,
  kKeyEncipherment = 1 << 2,
  kDataEncipherment = 1 << 3,
  kKeyAgreement = 1 << 4,
  kKeyCertSign = 1 << 5,
  kCrlSign = 1 << 6,
};

constexpr std::uint16_t operator|(KeyUsage a, KeyUsage b) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(a) |
                                    static_cast<std::uint16_t>(b));
}

/// Extended key usage purposes (subset relevant to the study).
enum class ExtendedKeyUsage : std::uint8_t {
  kServerAuth,
  kClientAuth,
  kCodeSigning,
  kEmailProtection,
  kOcspSigning,
};

std::string to_string(ExtendedKeyUsage eku);

/// The decoded extension block of a certificate, covering every Table 1
/// field the paper names. Unknown extensions survive round-trips as raw
/// (oid, critical, der) triples.
struct Extensions {
  // --- Subscriber authentication ---
  std::vector<std::string> subject_alt_names;  // dNSName entries
  std::optional<crypto::Digest> subject_key_id;

  // --- Key authorization ---
  std::optional<bool> basic_constraints_ca;
  std::uint16_t key_usage = 0;  // OR of KeyUsage bits; 0 = extension absent
  std::vector<ExtendedKeyUsage> ext_key_usage;

  // --- Issuer information ---
  std::optional<crypto::Digest> authority_key_id;
  std::vector<std::string> crl_distribution_points;  // URLs
  std::vector<std::string> ocsp_urls;                // AIA id-ad-ocsp
  std::vector<asn1::Oid> certificate_policies;
  /// RFC 7633 TLS Feature extension carrying status_request (5):
  /// "OCSP Must-Staple". Hard-fails in Firefox even under soft-fail policy.
  bool ocsp_must_staple = false;

  // --- Certificate metadata ---
  bool precert_poison = false;
  /// Signed certificate timestamps: ids of the CT logs that logged it.
  std::vector<std::uint64_t> sct_log_ids;

  struct RawExtension {
    asn1::Oid oid;
    bool critical = false;
    asn1::Bytes der;
    bool operator==(const RawExtension&) const = default;
  };
  std::vector<RawExtension> unknown;

  [[nodiscard]] bool has_key_usage(KeyUsage bit) const {
    return (key_usage & static_cast<std::uint16_t>(bit)) != 0;
  }
  [[nodiscard]] bool has_eku(ExtendedKeyUsage purpose) const;

  void encode(asn1::Encoder& enc) const;
  static Extensions decode(asn1::Decoder& dec);

  bool operator==(const Extensions&) const = default;
};

}  // namespace stalecert::x509
