#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stalecert/asn1/der.hpp"
#include "stalecert/crypto/keypair.hpp"
#include "stalecert/crypto/sha256.hpp"
#include "stalecert/util/interval.hpp"
#include "stalecert/x509/extensions.hpp"
#include "stalecert/x509/name.hpp"

namespace stalecert::x509 {

/// A TLS server certificate, covering every field in the paper's Table 1
/// taxonomy (subscriber authentication, key authorization, issuer
/// information, certificate metadata). Certificates are immutable values:
/// build one with CertificateBuilder, serialize/parse with to_der()/
/// from_der().
class Certificate {
 public:
  Certificate() = default;

  // --- Certificate metadata ---
  [[nodiscard]] const asn1::Bytes& serial() const { return serial_; }
  [[nodiscard]] std::string serial_hex() const;

  // --- Issuer information ---
  [[nodiscard]] const DistinguishedName& issuer() const { return issuer_; }

  // --- Subscriber authentication ---
  [[nodiscard]] const DistinguishedName& subject() const { return subject_; }
  [[nodiscard]] const crypto::KeyPair& subject_key() const { return key_; }
  /// All DNS names: SAN entries plus subject CN if it looks like a name.
  [[nodiscard]] std::vector<std::string> dns_names() const;
  /// Does the certificate cover a hostname (exact or single-level
  /// wildcard match)?
  [[nodiscard]] bool matches_domain(std::string_view hostname) const;

  // --- Validity ---
  [[nodiscard]] util::Date not_before() const { return validity_.begin(); }
  /// Exclusive end of validity (the day after the certificate's notAfter).
  [[nodiscard]] util::Date not_after() const { return validity_.end(); }
  [[nodiscard]] const util::DateInterval& validity() const { return validity_; }
  [[nodiscard]] std::int64_t lifetime_days() const { return validity_.days(); }
  [[nodiscard]] bool valid_at(util::Date d) const { return validity_.contains(d); }

  [[nodiscard]] const Extensions& extensions() const { return extensions_; }
  [[nodiscard]] bool is_precertificate() const { return extensions_.precert_poison; }

  /// SHA-256 over the DER encoding (the usual certificate fingerprint).
  [[nodiscard]] crypto::Digest fingerprint() const;
  /// Fingerprint over the certificate *without* CT-specific components
  /// (poison + SCTs). The paper deduplicates precertificates against their
  /// issued certificates "based on their non-CT components" — this is that
  /// key.
  [[nodiscard]] crypto::Digest dedup_fingerprint() const;

  /// (issuer key id, serial) pair — the join key used to match CRL entries
  /// back to CT certificates (Section 4.1).
  struct IssuerSerial {
    crypto::Digest authority_key_id{};
    asn1::Bytes serial;
    bool operator==(const IssuerSerial&) const = default;
  };
  [[nodiscard]] std::optional<IssuerSerial> issuer_serial() const;

  /// Serializes to DER (Certificate ::= SEQUENCE { tbs, sigAlg, sig }).
  [[nodiscard]] asn1::Bytes to_der() const;
  /// Parses DER produced by to_der(). Throws ParseError on malformed input.
  static Certificate from_der(std::span<const std::uint8_t> der);

  bool operator==(const Certificate&) const = default;

 private:
  friend class CertificateBuilder;

  [[nodiscard]] asn1::Bytes tbs_der(bool strip_ct_components) const;

  asn1::Bytes serial_;
  DistinguishedName issuer_;
  DistinguishedName subject_;
  util::DateInterval validity_;
  crypto::KeyPair key_;
  Extensions extensions_;
};

/// Fluent builder for certificates.
class CertificateBuilder {
 public:
  CertificateBuilder& serial(std::uint64_t serial);
  CertificateBuilder& serial_bytes(asn1::Bytes serial);
  CertificateBuilder& issuer(DistinguishedName dn);
  CertificateBuilder& subject(DistinguishedName dn);
  CertificateBuilder& subject_cn(std::string common_name);
  CertificateBuilder& validity(util::Date not_before, util::Date not_after);
  CertificateBuilder& key(crypto::KeyPair key);
  CertificateBuilder& add_dns_name(std::string name);
  CertificateBuilder& dns_names(std::vector<std::string> names);
  CertificateBuilder& authority_key_id(crypto::Digest id);
  CertificateBuilder& server_auth_profile();  // DV leaf defaults
  CertificateBuilder& crl_url(std::string url);
  CertificateBuilder& ocsp_url(std::string url);
  CertificateBuilder& policy(asn1::Oid oid);
  CertificateBuilder& ocsp_must_staple(bool enabled = true);
  CertificateBuilder& precert_poison(bool poison = true);
  CertificateBuilder& sct_log_ids(std::vector<std::uint64_t> ids);

  /// Finalizes. Throws LogicError if serial, validity or key are unset.
  [[nodiscard]] Certificate build() const;

 private:
  Certificate cert_;
  bool have_serial_ = false;
  bool have_validity_ = false;
  bool have_key_ = false;
};

}  // namespace stalecert::x509
