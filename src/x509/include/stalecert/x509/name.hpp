#pragma once

#include <string>

#include "stalecert/asn1/der.hpp"

namespace stalecert::x509 {

/// A (reduced) X.501 distinguished name: the three attributes that matter
/// for issuer attribution in the paper's analysis (Figure 5b groups stale
/// certificates by issuer common name).
struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  [[nodiscard]] bool empty() const {
    return common_name.empty() && organization.empty() && country.empty();
  }

  /// "CN=..., O=..., C=..." display form (empty attributes omitted).
  [[nodiscard]] std::string to_string() const;

  void encode(asn1::Encoder& enc) const;
  static DistinguishedName decode(asn1::Decoder& dec);

  bool operator==(const DistinguishedName&) const = default;
};

}  // namespace stalecert::x509
