#include "stalecert/x509/certificate.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::x509 {
namespace {

// Signature algorithm OID for our modelled signatures. The study tracks key
// custody, not signature math, so every certificate carries
// ecdsa-with-SHA256 and a SHA-256-over-TBS "signature" value.
void encode_sig_alg(asn1::Encoder& enc) {
  enc.begin_sequence();
  enc.write_oid(asn1::oids::ecdsa_with_sha256());
  enc.end_sequence();
}

void encode_spki(asn1::Encoder& enc, const crypto::KeyPair& key) {
  enc.begin_sequence();
  enc.begin_sequence();
  enc.write_oid(key.algorithm() == crypto::KeyAlgorithm::kRsa2048 ||
                        key.algorithm() == crypto::KeyAlgorithm::kRsa4096
                    ? asn1::oids::sha256_with_rsa()
                    : asn1::oids::ecdsa_with_sha256());
  // Algorithm discriminator kept exactly (OIDs alone cannot distinguish
  // key sizes in this model).
  enc.write_integer(static_cast<std::int64_t>(key.algorithm()));
  enc.end_sequence();
  enc.write_bit_string(key.spki_fingerprint());
  enc.end_sequence();
}

crypto::KeyPair decode_spki(asn1::Decoder& dec) {
  asn1::Decoder spki = dec.enter_sequence();
  asn1::Decoder alg = spki.enter_sequence();
  (void)alg.read_oid();
  const auto algorithm = static_cast<crypto::KeyAlgorithm>(alg.read_integer());
  const asn1::Bytes bits = spki.read_bit_string();
  if (bits.size() != 32) throw ParseError("SPKI fingerprint must be 32 bytes");
  crypto::Digest digest;
  std::copy(bits.begin(), bits.end(), digest.begin());
  return crypto::KeyPair::from_parts(digest, algorithm);
}

}  // namespace

std::string Certificate::serial_hex() const { return util::hex_encode(serial_); }

std::vector<std::string> Certificate::dns_names() const {
  std::vector<std::string> names = extensions_.subject_alt_names;
  const std::string& cn = subject_.common_name;
  if (!cn.empty() && cn.find('.') != std::string::npos &&
      std::find(names.begin(), names.end(), cn) == names.end()) {
    names.push_back(cn);
  }
  return names;
}

bool Certificate::matches_domain(std::string_view hostname) const {
  const std::string lowered = util::to_lower(hostname);
  for (const auto& name : dns_names()) {
    const std::string pattern = util::to_lower(name);
    if (pattern == lowered) return true;
    if (util::starts_with(pattern, "*.")) {
      // Wildcard covers exactly one label.
      const std::string_view rest = std::string_view(lowered);
      const auto dot = rest.find('.');
      if (dot != std::string_view::npos && rest.substr(dot + 1) == pattern.substr(2) &&
          dot > 0) {
        return true;
      }
    }
  }
  return false;
}

asn1::Bytes Certificate::tbs_der(bool strip_ct_components) const {
  asn1::Encoder enc;
  enc.begin_sequence();
  enc.begin_context(0);  // version [0]
  enc.write_integer(2);  // v3
  enc.end_context();
  enc.write_integer_bytes(serial_);
  encode_sig_alg(enc);
  issuer_.encode(enc);
  enc.begin_sequence();  // Validity
  enc.write_time(validity_.begin());
  enc.write_time(validity_.end());
  enc.end_sequence();
  subject_.encode(enc);
  encode_spki(enc, key_);
  enc.begin_context(3);  // extensions [3]
  if (strip_ct_components) {
    Extensions stripped = extensions_;
    stripped.precert_poison = false;
    stripped.sct_log_ids.clear();
    stripped.encode(enc);
  } else {
    extensions_.encode(enc);
  }
  enc.end_context();
  enc.end_sequence();
  return enc.take();
}

crypto::Digest Certificate::fingerprint() const {
  const asn1::Bytes der = to_der();
  return crypto::Sha256::hash(der);
}

crypto::Digest Certificate::dedup_fingerprint() const {
  const asn1::Bytes tbs = tbs_der(/*strip_ct_components=*/true);
  return crypto::Sha256::hash(tbs);
}

std::optional<Certificate::IssuerSerial> Certificate::issuer_serial() const {
  if (!extensions_.authority_key_id) return std::nullopt;
  return IssuerSerial{*extensions_.authority_key_id, serial_};
}

asn1::Bytes Certificate::to_der() const {
  const asn1::Bytes tbs = tbs_der(/*strip_ct_components=*/false);
  const crypto::Digest signature = crypto::Sha256::hash(tbs);

  asn1::Encoder enc;
  enc.begin_sequence();
  enc.write_raw(tbs);
  encode_sig_alg(enc);
  enc.write_bit_string(signature);
  enc.end_sequence();
  return enc.take();
}

Certificate Certificate::from_der(std::span<const std::uint8_t> der) {
  asn1::Decoder outer(der);
  asn1::Decoder cert_seq = outer.enter_sequence();

  asn1::Decoder tbs = cert_seq.enter_sequence();
  // version [0]
  const asn1::Tlv version = tbs.read_any();
  if (!version.is_context(0)) throw ParseError("certificate: missing version");
  asn1::Decoder version_body(version.content);
  if (version_body.read_integer() != 2) throw ParseError("certificate: not v3");

  Certificate cert;
  cert.serial_ = tbs.read_integer_bytes();
  {
    asn1::Decoder sig_alg = tbs.enter_sequence();
    (void)sig_alg.read_oid();
  }
  cert.issuer_ = DistinguishedName::decode(tbs);
  {
    asn1::Decoder validity = tbs.enter_sequence();
    const util::Date not_before = validity.read_time();
    const util::Date not_after = validity.read_time();
    if (not_after < not_before) throw ParseError("certificate: notAfter < notBefore");
    cert.validity_ = util::DateInterval{not_before, not_after};
  }
  cert.subject_ = DistinguishedName::decode(tbs);
  cert.key_ = decode_spki(tbs);
  if (!tbs.at_end()) {
    const asn1::Tlv ext_block = tbs.read_any();
    if (!ext_block.is_context(3)) throw ParseError("certificate: expected extensions [3]");
    asn1::Decoder ext_body(ext_block.content);
    cert.extensions_ = Extensions::decode(ext_body);
  }

  {
    asn1::Decoder sig_alg = cert_seq.enter_sequence();
    (void)sig_alg.read_oid();
  }
  (void)cert_seq.read_bit_string();
  return cert;
}

CertificateBuilder& CertificateBuilder::serial(std::uint64_t serial) {
  asn1::Bytes bytes;
  for (int i = 7; i >= 0; --i) {
    bytes.push_back(static_cast<std::uint8_t>(serial >> (i * 8)));
  }
  while (bytes.size() > 1 && bytes.front() == 0) bytes.erase(bytes.begin());
  return serial_bytes(std::move(bytes));
}

CertificateBuilder& CertificateBuilder::serial_bytes(asn1::Bytes serial) {
  cert_.serial_ = std::move(serial);
  have_serial_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName dn) {
  cert_.issuer_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName dn) {
  cert_.subject_ = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_cn(std::string common_name) {
  cert_.subject_.common_name = std::move(common_name);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(util::Date not_before,
                                                 util::Date not_after) {
  if (not_after < not_before) throw LogicError("validity: notAfter < notBefore");
  cert_.validity_ = util::DateInterval{not_before, not_after};
  have_validity_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::key(crypto::KeyPair key) {
  cert_.key_ = key;
  cert_.extensions_.subject_key_id = key.key_id();
  have_key_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::add_dns_name(std::string name) {
  cert_.extensions_.subject_alt_names.push_back(util::to_lower(name));
  return *this;
}

CertificateBuilder& CertificateBuilder::dns_names(std::vector<std::string> names) {
  cert_.extensions_.subject_alt_names.clear();
  for (auto& name : names) add_dns_name(std::move(name));
  return *this;
}

CertificateBuilder& CertificateBuilder::authority_key_id(crypto::Digest id) {
  cert_.extensions_.authority_key_id = id;
  return *this;
}

CertificateBuilder& CertificateBuilder::server_auth_profile() {
  cert_.extensions_.basic_constraints_ca = false;
  cert_.extensions_.key_usage =
      KeyUsage::kDigitalSignature | KeyUsage::kKeyEncipherment;
  cert_.extensions_.ext_key_usage = {ExtendedKeyUsage::kServerAuth,
                                     ExtendedKeyUsage::kClientAuth};
  return *this;
}

CertificateBuilder& CertificateBuilder::crl_url(std::string url) {
  cert_.extensions_.crl_distribution_points.push_back(std::move(url));
  return *this;
}

CertificateBuilder& CertificateBuilder::ocsp_url(std::string url) {
  cert_.extensions_.ocsp_urls.push_back(std::move(url));
  return *this;
}

CertificateBuilder& CertificateBuilder::policy(asn1::Oid oid) {
  cert_.extensions_.certificate_policies.push_back(std::move(oid));
  return *this;
}

CertificateBuilder& CertificateBuilder::ocsp_must_staple(bool enabled) {
  cert_.extensions_.ocsp_must_staple = enabled;
  return *this;
}

CertificateBuilder& CertificateBuilder::precert_poison(bool poison) {
  cert_.extensions_.precert_poison = poison;
  return *this;
}

CertificateBuilder& CertificateBuilder::sct_log_ids(std::vector<std::uint64_t> ids) {
  cert_.extensions_.sct_log_ids = std::move(ids);
  return *this;
}

Certificate CertificateBuilder::build() const {
  if (!have_serial_) throw LogicError("CertificateBuilder: serial unset");
  if (!have_validity_) throw LogicError("CertificateBuilder: validity unset");
  if (!have_key_) throw LogicError("CertificateBuilder: key unset");
  return cert_;
}

}  // namespace stalecert::x509
