#include "stalecert/x509/name.hpp"

namespace stalecert::x509 {

std::string DistinguishedName::to_string() const {
  std::string out;
  auto append = [&out](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!out.empty()) out += ", ";
    out += key;
    out += '=';
    out += value;
  };
  append("CN", common_name);
  append("O", organization);
  append("C", country);
  return out;
}

void DistinguishedName::encode(asn1::Encoder& enc) const {
  // RDNSequence ::= SEQUENCE OF SET OF AttributeTypeAndValue
  enc.begin_sequence();
  auto emit = [&enc](const asn1::Oid& oid, const std::string& value) {
    if (value.empty()) return;
    enc.begin_set();
    enc.begin_sequence();
    enc.write_oid(oid);
    enc.write_utf8_string(value);
    enc.end_sequence();
    enc.end_set();
  };
  emit(asn1::oids::country(), country);
  emit(asn1::oids::organization(), organization);
  emit(asn1::oids::common_name(), common_name);
  enc.end_sequence();
}

DistinguishedName DistinguishedName::decode(asn1::Decoder& dec) {
  DistinguishedName dn;
  asn1::Decoder rdns = dec.enter_sequence();
  while (!rdns.at_end()) {
    asn1::Decoder set = rdns.enter_set();
    asn1::Decoder attr = set.enter_sequence();
    const asn1::Oid oid = attr.read_oid();
    const std::string value = attr.read_string();
    if (oid == asn1::oids::common_name()) {
      dn.common_name = value;
    } else if (oid == asn1::oids::organization()) {
      dn.organization = value;
    } else if (oid == asn1::oids::country()) {
      dn.country = value;
    }
    // Unknown attributes are tolerated and dropped.
  }
  return dn;
}

}  // namespace stalecert::x509
