#include "stalecert/x509/extensions.hpp"

#include <algorithm>
#include <cstring>

#include "stalecert/util/error.hpp"

namespace stalecert::x509 {
namespace {

const asn1::Oid& eku_oid(ExtendedKeyUsage eku) {
  switch (eku) {
    case ExtendedKeyUsage::kServerAuth: return asn1::oids::server_auth();
    case ExtendedKeyUsage::kClientAuth: return asn1::oids::client_auth();
    case ExtendedKeyUsage::kCodeSigning: return asn1::oids::code_signing();
    case ExtendedKeyUsage::kEmailProtection: return asn1::oids::email_protection();
    case ExtendedKeyUsage::kOcspSigning: return asn1::oids::ocsp_signing();
  }
  throw LogicError("unknown EKU");
}

std::optional<ExtendedKeyUsage> eku_from_oid(const asn1::Oid& oid) {
  for (const auto eku :
       {ExtendedKeyUsage::kServerAuth, ExtendedKeyUsage::kClientAuth,
        ExtendedKeyUsage::kCodeSigning, ExtendedKeyUsage::kEmailProtection,
        ExtendedKeyUsage::kOcspSigning}) {
    if (eku_oid(eku) == oid) return eku;
  }
  return std::nullopt;
}

// Encodes one extension: SEQUENCE { oid, [critical,] OCTET STRING { value } }
void emit_extension(asn1::Encoder& enc, const asn1::Oid& oid, bool critical,
                    const asn1::Bytes& value) {
  enc.begin_sequence();
  enc.write_oid(oid);
  if (critical) enc.write_boolean(true);
  enc.write_octet_string(value);
  enc.end_sequence();
}

}  // namespace

std::string to_string(ExtendedKeyUsage eku) {
  switch (eku) {
    case ExtendedKeyUsage::kServerAuth: return "serverAuth";
    case ExtendedKeyUsage::kClientAuth: return "clientAuth";
    case ExtendedKeyUsage::kCodeSigning: return "codeSigning";
    case ExtendedKeyUsage::kEmailProtection: return "emailProtection";
    case ExtendedKeyUsage::kOcspSigning: return "OCSPSigning";
  }
  return "unknown";
}

bool Extensions::has_eku(ExtendedKeyUsage purpose) const {
  return std::find(ext_key_usage.begin(), ext_key_usage.end(), purpose) !=
         ext_key_usage.end();
}

void Extensions::encode(asn1::Encoder& enc) const {
  enc.begin_sequence();  // Extensions ::= SEQUENCE OF Extension

  if (!subject_alt_names.empty()) {
    asn1::Encoder value;
    value.begin_sequence();  // GeneralNames
    for (const auto& name : subject_alt_names) {
      value.write_context_string(2, name);  // dNSName [2] IA5String
    }
    value.end_sequence();
    emit_extension(enc, asn1::oids::subject_alt_name(), false, value.bytes());
  }

  if (subject_key_id) {
    asn1::Encoder value;
    value.write_octet_string(*subject_key_id);
    emit_extension(enc, asn1::oids::subject_key_id(), false, value.bytes());
  }

  if (basic_constraints_ca) {
    asn1::Encoder value;
    value.begin_sequence();
    if (*basic_constraints_ca) value.write_boolean(true);
    value.end_sequence();
    emit_extension(enc, asn1::oids::basic_constraints(), true, value.bytes());
  }

  if (key_usage != 0) {
    // BIT STRING with bit 0 = most significant bit of the first byte.
    std::uint8_t bits = 0;
    for (int i = 0; i < 7; ++i) {
      if (key_usage & (1u << i)) bits |= static_cast<std::uint8_t>(0x80 >> i);
    }
    asn1::Encoder value;
    value.write_bit_string(std::span<const std::uint8_t>(&bits, 1));
    emit_extension(enc, asn1::oids::key_usage(), true, value.bytes());
  }

  if (!ext_key_usage.empty()) {
    asn1::Encoder value;
    value.begin_sequence();
    for (const auto eku : ext_key_usage) value.write_oid(eku_oid(eku));
    value.end_sequence();
    emit_extension(enc, asn1::oids::ext_key_usage(), false, value.bytes());
  }

  if (authority_key_id) {
    asn1::Encoder value;
    value.begin_sequence();
    // keyIdentifier [0] IMPLICIT OCTET STRING — model as primitive ctx tag.
    asn1::Encoder inner;
    inner.write_octet_string(*authority_key_id);
    const auto& raw = inner.bytes();
    asn1::Bytes tagged(raw);
    tagged[0] = asn1::context_tag(0, /*constructed=*/false);
    value.write_raw(tagged);
    value.end_sequence();
    emit_extension(enc, asn1::oids::authority_key_id(), false, value.bytes());
  }

  if (!crl_distribution_points.empty()) {
    asn1::Encoder value;
    value.begin_sequence();
    for (const auto& url : crl_distribution_points) {
      value.begin_sequence();      // DistributionPoint
      value.begin_context(0);      // distributionPoint [0]
      value.begin_context(0);      // fullName [0]
      value.write_context_string(6, url);  // uniformResourceIdentifier [6]
      value.end_context();
      value.end_context();
      value.end_sequence();
    }
    value.end_sequence();
    emit_extension(enc, asn1::oids::crl_distribution_points(), false, value.bytes());
  }

  if (!ocsp_urls.empty()) {
    asn1::Encoder value;
    value.begin_sequence();
    for (const auto& url : ocsp_urls) {
      value.begin_sequence();
      value.write_oid(asn1::Oid{1, 3, 6, 1, 5, 5, 7, 48, 1});  // id-ad-ocsp
      value.write_context_string(6, url);
      value.end_sequence();
    }
    value.end_sequence();
    emit_extension(enc, asn1::oids::authority_info_access(), false, value.bytes());
  }

  if (!certificate_policies.empty()) {
    asn1::Encoder value;
    value.begin_sequence();
    for (const auto& policy : certificate_policies) {
      value.begin_sequence();
      value.write_oid(policy);
      value.end_sequence();
    }
    value.end_sequence();
    emit_extension(enc, asn1::oids::certificate_policies(), false, value.bytes());
  }

  if (ocsp_must_staple) {
    asn1::Encoder value;
    value.begin_sequence();
    value.write_integer(5);  // status_request TLS feature
    value.end_sequence();
    emit_extension(enc, asn1::oids::tls_feature(), false, value.bytes());
  }

  if (precert_poison) {
    asn1::Encoder value;
    value.write_null();
    emit_extension(enc, asn1::oids::ct_precert_poison(), true, value.bytes());
  }

  if (!sct_log_ids.empty()) {
    asn1::Encoder value;
    value.begin_sequence();
    for (const auto log_id : sct_log_ids) {
      value.write_integer(static_cast<std::int64_t>(log_id));
    }
    value.end_sequence();
    emit_extension(enc, asn1::oids::ct_sct_list(), false, value.bytes());
  }

  for (const auto& raw : unknown) {
    emit_extension(enc, raw.oid, raw.critical, raw.der);
  }

  enc.end_sequence();
}

Extensions Extensions::decode(asn1::Decoder& dec) {
  Extensions ext;
  asn1::Decoder list = dec.enter_sequence();
  while (!list.at_end()) {
    asn1::Decoder one = list.enter_sequence();
    const asn1::Oid oid = one.read_oid();
    bool critical = false;
    if (!one.at_end() &&
        one.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
      critical = one.read_boolean();
    }
    const asn1::Bytes value = one.read_octet_string();
    asn1::Decoder body(value);

    if (oid == asn1::oids::subject_alt_name()) {
      asn1::Decoder names = body.enter_sequence();
      while (!names.at_end()) {
        const asn1::Tlv tlv = names.read_any();
        if (tlv.is_context(2)) {
          ext.subject_alt_names.emplace_back(tlv.content.begin(), tlv.content.end());
        }
      }
    } else if (oid == asn1::oids::subject_key_id()) {
      const asn1::Bytes id = body.read_octet_string();
      if (id.size() != 32) throw ParseError("subjectKeyId must be 32 bytes here");
      crypto::Digest digest;
      std::copy(id.begin(), id.end(), digest.begin());
      ext.subject_key_id = digest;
    } else if (oid == asn1::oids::basic_constraints()) {
      asn1::Decoder bc = body.enter_sequence();
      bool ca = false;
      if (!bc.at_end() &&
          bc.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
        ca = bc.read_boolean();
      }
      ext.basic_constraints_ca = ca;
    } else if (oid == asn1::oids::key_usage()) {
      unsigned unused = 0;
      const asn1::Bytes bits = body.read_bit_string(&unused);
      std::uint16_t usage = 0;
      if (!bits.empty()) {
        for (int i = 0; i < 7; ++i) {
          if (bits[0] & (0x80 >> i)) usage |= static_cast<std::uint16_t>(1u << i);
        }
      }
      ext.key_usage = usage;
    } else if (oid == asn1::oids::ext_key_usage()) {
      asn1::Decoder ekus = body.enter_sequence();
      while (!ekus.at_end()) {
        const asn1::Oid purpose = ekus.read_oid();
        if (const auto eku = eku_from_oid(purpose)) ext.ext_key_usage.push_back(*eku);
      }
    } else if (oid == asn1::oids::authority_key_id()) {
      asn1::Decoder akid = body.enter_sequence();
      if (!akid.at_end()) {
        const asn1::Tlv tlv = akid.read_any();
        if (tlv.is_context(0) && tlv.content.size() == 32) {
          crypto::Digest digest;
          std::copy(tlv.content.begin(), tlv.content.end(), digest.begin());
          ext.authority_key_id = digest;
        }
      }
    } else if (oid == asn1::oids::crl_distribution_points()) {
      asn1::Decoder points = body.enter_sequence();
      while (!points.at_end()) {
        asn1::Decoder point = points.enter_sequence();
        if (point.at_end()) continue;
        const asn1::Tlv dp = point.read_any();  // [0] distributionPoint
        asn1::Decoder full(dp.content);
        if (full.at_end()) continue;
        const asn1::Tlv fn = full.read_any();  // [0] fullName
        asn1::Decoder uris(fn.content);
        while (!uris.at_end()) {
          const asn1::Tlv uri = uris.read_any();
          if (uri.is_context(6)) {
            ext.crl_distribution_points.emplace_back(uri.content.begin(),
                                                     uri.content.end());
          }
        }
      }
    } else if (oid == asn1::oids::authority_info_access()) {
      asn1::Decoder entries = body.enter_sequence();
      while (!entries.at_end()) {
        asn1::Decoder entry = entries.enter_sequence();
        const asn1::Oid method = entry.read_oid();
        const asn1::Tlv location = entry.read_any();
        if (method == asn1::Oid{1, 3, 6, 1, 5, 5, 7, 48, 1} && location.is_context(6)) {
          ext.ocsp_urls.emplace_back(location.content.begin(), location.content.end());
        }
      }
    } else if (oid == asn1::oids::certificate_policies()) {
      asn1::Decoder policies = body.enter_sequence();
      while (!policies.at_end()) {
        asn1::Decoder policy = policies.enter_sequence();
        ext.certificate_policies.push_back(policy.read_oid());
      }
    } else if (oid == asn1::oids::tls_feature()) {
      asn1::Decoder features = body.enter_sequence();
      while (!features.at_end()) {
        if (features.read_integer() == 5) ext.ocsp_must_staple = true;
      }
    } else if (oid == asn1::oids::ct_precert_poison()) {
      ext.precert_poison = true;
    } else if (oid == asn1::oids::ct_sct_list()) {
      asn1::Decoder scts = body.enter_sequence();
      while (!scts.at_end()) {
        ext.sct_log_ids.push_back(
            static_cast<std::uint64_t>(scts.read_integer()));
      }
    } else {
      ext.unknown.push_back({oid, critical, value});
    }
  }
  return ext;
}

}  // namespace stalecert::x509
