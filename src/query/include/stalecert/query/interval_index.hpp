#pragma once

#include <cstdint>
#include <vector>

#include "stalecert/util/interval.hpp"

namespace stalecert::query {

/// Static interval-stabbing index over half-open day intervals. Built once
/// from a batch of (interval, payload) pairs and immutable afterwards —
/// the serving-side answer to "which staleness windows cover this date?"
/// without scanning every record.
///
/// Layout: entries sorted by interval begin, with an implicit balanced BST
/// over that order where every node is annotated with the maximum interval
/// end in its subtree. Both query kinds prune on that annotation, giving
/// O(log n + k) for k reported payloads. Empty intervals are dropped at
/// build time (they can never contain a date).
class IntervalIndex {
 public:
  struct Entry {
    util::DateInterval interval;
    std::uint32_t payload = 0;
  };

  IntervalIndex() = default;
  explicit IntervalIndex(std::vector<Entry> entries);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Payloads of every interval containing `date` (begin <= date < end),
  /// in ascending payload order.
  [[nodiscard]] std::vector<std::uint32_t> stabbing(util::Date date) const;
  /// Number of intervals containing `date` without materializing payloads.
  [[nodiscard]] std::size_t stabbing_count(util::Date date) const;

  /// Payloads of every interval overlapping the half-open `range`, in
  /// ascending payload order. An empty range overlaps nothing.
  [[nodiscard]] std::vector<std::uint32_t> overlapping(
      const util::DateInterval& range) const;

 private:
  void stab(std::size_t lo, std::size_t hi, util::Date date,
            std::vector<std::uint32_t>* out, std::size_t* count) const;
  void overlap(std::size_t lo, std::size_t hi, const util::DateInterval& range,
               std::vector<std::uint32_t>* out) const;

  std::vector<Entry> entries_;   // sorted by (begin, end, payload)
  std::vector<util::Date> max_end_;  // subtree max end, implicit BST on [lo,hi)
};

}  // namespace stalecert::query
