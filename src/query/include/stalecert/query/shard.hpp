#pragma once

#include <functional>
#include <string>

#include "stalecert/store/filter.hpp"

namespace stalecert::query {

/// Binds a snapshot to one shard of a cluster partition: the store-level
/// record filter that carves out the shard's slice, plus the ownership
/// predicate used to attribute global statistics to exactly one shard (a
/// certificate replicated onto several shards must be counted once).
///
/// The policy (FNV-1a over e2LDs, replication rules) lives in
/// stalecert::cluster; query only consumes the closed-over predicates, so
/// the serving layer stays ignorant of cluster topology.
struct ShardScope {
  /// Record filter handed to store::filter_world.
  store::WorldFilter filter;
  /// owns(routing_key) — true iff this shard is the key's home shard. The
  /// key is a routing domain for domain-grained stats, a lowercase SPKI or
  /// serial hex for key-grained ones; the predicate hashes the string
  /// either way, so query code never learns the policy.
  std::function<bool(const std::string&)> owns;
  /// Human-readable shard id ("0/4"); suffixed onto the archive profile as
  /// "#shard-<label>" so shard archives and shard feed deltas bind to each
  /// other (feed::world_id covers the profile) and never to the full world.
  std::string label;
};

/// The unit a domain name is routed by: normalize, then reduce to the
/// registered domain (e2LD); names without a recognizable e2LD (bare TLDs,
/// empty) route by themselves. Shards, ownership and at-risk joins all key
/// on this, which is what makes e2LD-grained partitioning lossless: every
/// join the detectors perform stays within one routing domain.
std::string routing_domain(const std::string& name);

/// Filters a loaded world down to one shard's slice and tags the profile
/// with the scope's shard label. A world already tagged with the same label
/// (a pre-split shard archive) passes through unchanged; one tagged with a
/// DIFFERENT label is a deployment error and throws store::ArchiveError.
store::LoadedWorld apply_shard_filter(store::LoadedWorld world,
                                      const ShardScope& scope);

}  // namespace stalecert::query
