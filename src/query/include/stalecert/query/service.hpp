#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "stalecert/obs/event_log.hpp"
#include "stalecert/obs/metrics.hpp"
#include "stalecert/obs/quantile.hpp"
#include "stalecert/obs/request_trace.hpp"
#include "stalecert/obs/window.hpp"
#include "stalecert/query/http.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::query {

/// Thread-safe holder of the current serving snapshot. Readers take a
/// shared_ptr copy (the snapshot stays alive for the whole request even if
/// a reload swaps underneath them); writers publish a fully built
/// replacement with one pointer swap. The mutex is held only for the
/// pointer copy, never while an index is built or queried.
class SnapshotCell {
 public:
  [[nodiscard]] std::shared_ptr<const StalenessIndex> get() const {
    const util::MutexLock lock(mutex_);
    return snapshot_;
  }

  void set(std::shared_ptr<const StalenessIndex> snapshot) {
    const util::MutexLock lock(mutex_);
    snapshot_ = std::move(snapshot);
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of successful publishes (0 until the first set()).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  mutable util::Mutex mutex_;
  std::shared_ptr<const StalenessIndex> snapshot_ GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> generation_{0};
};

/// Tunables for the serving-path observability layer (obs v2).
struct ServiceOptions {
  /// Requests at least this slow emit a warn event with their span
  /// breakdown (the slow-trace ring is independent: it always retains the
  /// N slowest recent requests).
  std::chrono::nanoseconds slow_threshold{std::chrono::milliseconds(1)};
  std::size_t slow_trace_capacity = 16;
  /// Availability SLO: target fraction of non-5xx responses.
  double availability_slo = 0.999;
  /// Latency SLO: `latency_slo_fraction` of requests must finish within
  /// `latency_slo_seconds` (aligned with a latency bucket bound so burn
  /// accounting is exact).
  double latency_slo_seconds = 4e-3;
  double latency_slo_fraction = 0.99;
  /// Free-form build/version string surfaced on /statusz.
  std::string build_info = "stalecert-staled/dev";
  /// Directory staled polls for .scwd deltas (display only at this layer:
  /// the poll loop lives in the binary, the apply logic in the ingest
  /// handler). Empty = feed mode off.
  std::string feed_dir;
  /// Injected snapshot factory used by load()/reload() in place of
  /// StalenessIndex::from_archive(path). staled --shard installs a
  /// shard-scoped builder here so the service never learns cluster policy.
  std::function<std::shared_ptr<const StalenessIndex>(const std::string&)>
      snapshot_builder;
  /// Shard identity surfaced on /statusz and /metrics. shard_count == 0
  /// means this process serves a whole world (the default).
  unsigned shard_index = 0;
  unsigned shard_count = 0;
};

/// Where one delta ingest came from: a .scwd file on disk (path set) or
/// raw container bytes (e.g. a POST /ingest body). `origin` labels logs
/// and events ("http", "poll", "startup", "sighup").
struct IngestSource {
  std::string path;
  std::string bytes;
  std::string origin = "http";
};

/// What one ingest attempt produced. `status` is the HTTP status POST
/// /ingest relays: 200 applied, 400 unreadable delta, 409 wrong world or
/// out-of-sequence, 500 unexpected. On failure the service keeps serving
/// its previous snapshot.
struct IngestOutcome {
  bool ok = false;
  int status = 500;
  std::string message;
  std::shared_ptr<const StalenessIndex> index;  // successor snapshot when ok
  std::uint64_t new_certificates = 0;
  std::uint64_t new_stale_records = 0;
  bool rebuilt = false;
  /// Deltas folded in since the base snapshot (applier generation).
  std::uint64_t feed_generation = 0;
  /// Last day covered after the apply, ISO "YYYY-MM-DD".
  std::string horizon;
};

/// Pluggable delta-apply backend (feed::FeedRuntime implements this; the
/// indirection keeps stalecert_query free of a stalecert_feed dependency).
/// Must be callable from multiple threads or do its own serialization.
using IngestHandler = std::function<IngestOutcome(const IngestSource&)>;

/// The staled request handler: routes the endpoint set over the current
/// SnapshotCell snapshot, and observes itself end to end — per-endpoint
/// lifetime counters/histograms (served at /metrics), sliding 1m/5m
/// windowed rates and latency quantiles, SLO burn-rate gauges, a ring of
/// the slowest recent request traces, and a structured event log.
///
/// Endpoints:
///   GET /v1/stale?domain=D&date=YYYY-MM-DD   point-in-time staleness
///   GET /v1/key/<spki-hex>                   certificates sharing a key
///   GET /v1/summary[?domain=D]               global or per-domain summary
///   GET /v1/revocation?serial=<hex>          joined revocation status
///   GET /healthz                             liveness (503 until loaded)
///   GET /metrics                             Prometheus exposition
///   GET /statusz[?format=html]               operational status (JSON/HTML)
///   POST /ingest[?path=F]                    apply one .scwd delta (feed mode)
class StaledService {
 public:
  explicit StaledService(std::string archive_path, ServiceOptions options = {});

  /// Builds the initial snapshot from the archive. Throws (store/pipeline
  /// error taxonomy) when the archive is unusable.
  void load();

  /// Rebuilds from the same archive path and atomically swaps the
  /// snapshot in. On failure the previous snapshot keeps serving and the
  /// reload error counter is bumped; returns false in that case. Safe to
  /// call concurrently with in-flight requests (SIGHUP hot reload).
  bool reload();

  /// Atomically publishes an externally built snapshot (feed mode: the
  /// FeedRuntime's base build at startup, or the rebuilt base on SIGHUP
  /// before deltas are re-applied). Updates the same gauges as load().
  void publish(std::shared_ptr<const StalenessIndex> index,
               const std::string& source);

  /// Thread-safe request entry point (the HttpServer handler).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

  /// Enables feed mode: installs the delta-apply backend and registers the
  /// ingest metrics. Call before start of serving; POST /ingest answers
  /// 404 until a handler is installed.
  void set_ingest_handler(IngestHandler handler);
  [[nodiscard]] bool feed_enabled() const { return ingest_handler_ != nullptr; }

  /// Applies one delta through the installed handler (serialized on an
  /// internal mutex) and, on success, atomically publishes the successor
  /// snapshot. On failure the previous snapshot keeps serving, the error
  /// counter is bumped, and a warn event is logged. Used by POST /ingest,
  /// the --feed-dir poll loop, and the SIGHUP re-apply path.
  IngestOutcome ingest(const IngestSource& source);

  /// Non-blocking variant: nullopt when another apply currently holds the
  /// ingest path (the caller should answer 503 + Retry-After rather than
  /// queue). POST /ingest uses this; the poll loop and SIGHUP re-apply
  /// keep the blocking ingest() since they must not drop deltas.
  std::optional<IngestOutcome> try_ingest(const IngestSource& source);

  /// Post-write hook body: attributes the socket write time back to the
  /// request's retained trace. Wire as
  ///   server.set_request_hook([&](const auto&, const auto& resp, auto d) {
  ///     service.on_response_written(resp, d); });
  void on_response_written(const HttpResponse& response,
                           std::chrono::nanoseconds write_duration);

  [[nodiscard]] std::shared_ptr<const StalenessIndex> snapshot() const {
    return cell_.get();
  }
  [[nodiscard]] std::uint64_t generation() const { return cell_.generation(); }
  [[nodiscard]] const std::string& archive_path() const { return archive_path_; }
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  /// The service's structured event log; configure sinks/level before
  /// load() (staled wires --log-file / --log-level here).
  [[nodiscard]] obs::EventLog& log() { return log_; }
  [[nodiscard]] const obs::SlowTraceRing& slow_traces() const {
    return slow_ring_;
  }

  /// Windowed latency summary / request rate for one endpoint (e.g.
  /// "stale") over the trailing window, clamped to the 5m horizon.
  [[nodiscard]] obs::QuantileSummary windowed_latency(
      const std::string& endpoint, std::chrono::seconds window) const;
  [[nodiscard]] double windowed_qps(const std::string& endpoint,
                                    std::chrono::seconds window) const;

 private:
  struct EndpointWindow {
    EndpointWindow();
    obs::WindowedCounter requests;
    obs::WindowedCounter errors;  // 5xx responses
    obs::WindowedCounter slow;    // over the latency SLO bound
    obs::WindowedHistogram latency;
  };

  HttpResponse dispatch(const HttpRequest& request, std::string* endpoint,
                        const std::shared_ptr<const StalenessIndex>& index,
                        obs::RequestTrace* trace);
  HttpResponse handle_stale(const HttpRequest& request,
                            const StalenessIndex& index,
                            obs::RequestTrace* trace) const;
  HttpResponse handle_key(const std::string& spki_hex,
                          const StalenessIndex& index,
                          obs::RequestTrace* trace) const;
  HttpResponse handle_summary(const HttpRequest& request,
                              const StalenessIndex& index,
                              obs::RequestTrace* trace);
  HttpResponse handle_revocation(const HttpRequest& request,
                                 const StalenessIndex& index,
                                 obs::RequestTrace* trace) const;
  HttpResponse handle_metrics(obs::RequestTrace* trace);
  HttpResponse handle_statusz(const HttpRequest& request,
                              const std::shared_ptr<const StalenessIndex>& index,
                              obs::RequestTrace* trace);
  HttpResponse handle_ingest(const HttpRequest& request,
                             obs::RequestTrace* trace);

  /// The serialized section of an ingest: runs the handler and publishes
  /// the successor snapshot. Must not throw — the try_ingest path releases
  /// the mutex manually after it returns (handler failures come back as
  /// statuses, never exceptions).
  IngestOutcome apply_ingest_locked(const IngestSource& source)
      REQUIRES(ingest_mutex_);
  /// The unserialized tail of an ingest: metrics, gauges, event log.
  void record_ingest(const IngestOutcome& outcome, const IngestSource& source,
                     std::chrono::steady_clock::time_point start);

  /// Folds the sliding windows into registry gauges (qps, quantiles, SLO
  /// burn rates) so /metrics exposes them; called at scrape time.
  void export_window_gauges();
  [[nodiscard]] std::string statusz_json(
      const std::shared_ptr<const StalenessIndex>& index);
  void finish_request(const HttpRequest& request, HttpResponse* response,
                      obs::RequestTrace trace, const std::string& endpoint,
                      std::chrono::nanoseconds elapsed);

  std::string archive_path_;
  ServiceOptions options_;
  SnapshotCell cell_;
  obs::MetricsRegistry registry_;
  obs::EventLog log_;
  obs::SlowTraceRing slow_ring_;
  std::atomic<std::uint64_t> next_trace_id_{0};
  std::chrono::steady_clock::time_point started_;
  /// steady-clock offset (ns since started_) of the last successful load;
  /// -1 until the first one. Drives the /statusz snapshot age.
  std::atomic<std::int64_t> last_load_offset_ns_{-1};
  /// Fixed endpoint set, built in the constructor and never mutated, so
  /// concurrent request threads read it lock-free.
  std::map<std::string, EndpointWindow> windows_;

  // --- Feed mode (live delta ingestion) ---
  IngestHandler ingest_handler_;
  /// Serializes delta application (the handler mutates applier state; the
  /// published snapshots themselves are immutable and lock-free to read).
  /// No field is tagged GUARDED_BY it: the handler's state lives behind
  /// the FeedRuntime's own annotated mutex.
  util::Mutex ingest_mutex_;
  std::atomic<std::uint64_t> deltas_applied_{0};
  std::atomic<std::uint64_t> ingest_errors_{0};
  std::atomic<std::uint64_t> ingest_rebuilds_{0};
  std::atomic<std::uint64_t> feed_generation_{0};
  /// Horizon (days since epoch) after the last successful ingest;
  /// INT64_MIN until one happens.
  std::atomic<std::int64_t> feed_horizon_days_{INT64_MIN};
  /// steady-clock offset of the last successful ingest (ns since
  /// started_); -1 until one happens. Drives the /statusz ingest lag.
  std::atomic<std::int64_t> last_ingest_offset_ns_{-1};
};

}  // namespace stalecert::query
