#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "stalecert/obs/metrics.hpp"
#include "stalecert/query/http.hpp"
#include "stalecert/query/index.hpp"

namespace stalecert::query {

/// Thread-safe holder of the current serving snapshot. Readers take a
/// shared_ptr copy (the snapshot stays alive for the whole request even if
/// a reload swaps underneath them); writers publish a fully built
/// replacement with one pointer swap. The mutex is held only for the
/// pointer copy, never while an index is built or queried.
class SnapshotCell {
 public:
  [[nodiscard]] std::shared_ptr<const StalenessIndex> get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
  }

  void set(std::shared_ptr<const StalenessIndex> snapshot) {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_ = std::move(snapshot);
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of successful publishes (0 until the first set()).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const StalenessIndex> snapshot_;
  std::atomic<std::uint64_t> generation_{0};
};

/// The staled request handler: routes the endpoint set over the current
/// SnapshotCell snapshot and records per-endpoint request counters and
/// latency histograms into its MetricsRegistry (served back at /metrics).
///
/// Endpoints:
///   GET /v1/stale?domain=D&date=YYYY-MM-DD   point-in-time staleness
///   GET /v1/key/<spki-hex>                   certificates sharing a key
///   GET /v1/summary[?domain=D]               global or per-domain summary
///   GET /v1/revocation?serial=<hex>          joined revocation status
///   GET /healthz                             liveness (503 until loaded)
///   GET /metrics                             Prometheus exposition
class StaledService {
 public:
  explicit StaledService(std::string archive_path);

  /// Builds the initial snapshot from the archive. Throws (store/pipeline
  /// error taxonomy) when the archive is unusable.
  void load();

  /// Rebuilds from the same archive path and atomically swaps the
  /// snapshot in. On failure the previous snapshot keeps serving and the
  /// reload error counter is bumped; returns false in that case. Safe to
  /// call concurrently with in-flight requests (SIGHUP hot reload).
  bool reload();

  /// Thread-safe request entry point (the HttpServer handler).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

  [[nodiscard]] std::shared_ptr<const StalenessIndex> snapshot() const {
    return cell_.get();
  }
  [[nodiscard]] std::uint64_t generation() const { return cell_.generation(); }
  [[nodiscard]] const std::string& archive_path() const { return archive_path_; }
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }

 private:
  HttpResponse dispatch(const HttpRequest& request, std::string* endpoint,
                        const std::shared_ptr<const StalenessIndex>& index);
  HttpResponse handle_stale(const HttpRequest& request,
                            const StalenessIndex& index) const;
  HttpResponse handle_key(const std::string& spki_hex,
                          const StalenessIndex& index) const;
  HttpResponse handle_summary(const HttpRequest& request,
                              const StalenessIndex& index);
  HttpResponse handle_revocation(const HttpRequest& request,
                                 const StalenessIndex& index) const;

  std::string archive_path_;
  SnapshotCell cell_;
  obs::MetricsRegistry registry_;
};

}  // namespace stalecert::query
