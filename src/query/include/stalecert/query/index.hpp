#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stalecert/core/pipeline.hpp"
#include "stalecert/query/interval_index.hpp"
#include "stalecert/store/format.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::query {

struct ShardScope;

/// One detected stale certificate, denormalized for serving: the
/// StaleCertificate fields plus the identifiers a caller needs without
/// chasing the corpus (serial, SPKI).
struct StaleRecord {
  std::uint32_t cert_index = 0;  // into StalenessIndex::corpus()
  core::StaleClass cls = core::StaleClass::kKeyCompromise;
  util::Date event_date;
  util::DateInterval staleness;  // [event, notAfter)
  std::string trigger_domain;
  std::optional<revocation::ReasonCode> reason;
};

/// Answer to revocation_status(serial): the earliest joined revocation of
/// the certificate carrying that serial (ties broken by lower cert index).
struct RevocationStatus {
  std::uint32_t cert_index = 0;
  util::Date revocation_date;
  revocation::ReasonCode reason = revocation::ReasonCode::kUnspecified;

  [[nodiscard]] bool key_compromise() const {
    return reason == revocation::ReasonCode::kKeyCompromise;
  }
};

/// Per-domain aggregate over every stale record endangering that domain.
struct DomainSummary {
  std::string domain;  // normalized (lowercased, wildcard stripped)
  /// Corpus certificates whose SAN/CN set names the domain exactly.
  std::uint64_t certificates = 0;
  std::array<std::uint64_t, core::kStaleClassCount> stale_by_class{};
  std::optional<util::Date> earliest_event;
  /// Exclusive end of the last staleness window touching the domain.
  std::optional<util::Date> latest_staleness_end;

  [[nodiscard]] std::uint64_t stale_total() const {
    std::uint64_t total = 0;
    for (const auto n : stale_by_class) total += n;
    return total;
  }
};

/// The incremental-ingest unit produced by feed::DeltaApplier: the fully
/// extended corpus plus ONLY the stale records and revocation joins the
/// delta introduced. StalenessIndex::with_patch() folds one of these into
/// a base snapshot, producing a new immutable snapshot whose query answers
/// match a from-scratch pipeline run over the extended world.
struct IndexPatch {
  /// The extended corpus (base certificates in base order, delta
  /// certificates appended) — built via the CertificateCorpus extension
  /// constructor so the base inverted indexes are reused.
  core::CertificateCorpus corpus;
  /// Size of the base corpus this patch extends; with_patch() refuses a
  /// patch built against a different base.
  std::size_t base_certificates = 0;
  /// Cumulative CT collection funnel over the extended world.
  ct::CollectStats collect_stats;
  /// Cumulative revocation-join funnel over the extended world.
  revocation::JoinStats join_stats;
  /// New serial-join matches (all revocation reasons). The kKeyCompromise
  /// subset becomes new kKeyCompromise-class stale records.
  std::vector<core::StaleCertificate> new_all_revoked;
  std::vector<core::StaleCertificate> new_registrant_change;
  std::vector<core::StaleCertificate> new_managed_departure;
  /// Last day the delta covers: becomes meta().end of the new snapshot.
  util::Date new_end;
};

/// Immutable, fully indexed snapshot of one pipeline run, built for
/// point-lookup serving: hash indexes FQDN -> certificates and SPKI ->
/// certificates, a sorted interval index over staleness windows for
/// point-in-time and date-range queries, per-StaleClass views, and a
/// serial -> revocation join. Every query answers without scanning the
/// corpus; the differential test (tests/query/differential_test.cpp) pins
/// each one against a naive linear scan.
///
/// Instances are immutable after construction, so a std::shared_ptr<const
/// StalenessIndex> can be shared across serving threads and hot-swapped
/// atomically (see SnapshotCell in service.hpp).
class StalenessIndex {
 public:
  /// Builds every index from a finished pipeline run. `meta` carries the
  /// provenance (profile, seed, window) the summary endpoints report. A
  /// non-null observer receives record/entry counts and wall-clock under
  /// the stage name "query_index_build".
  StalenessIndex(core::PipelineResult result, store::ArchiveMeta meta,
                 obs::PipelineObserver* observer = nullptr);

  /// One-call serving snapshot from a .scw archive: load, run the pipeline
  /// with the archive's own posture (cutoff, delegation patterns), index.
  [[nodiscard]] static std::shared_ptr<const StalenessIndex> from_archive(
      const std::string& path, obs::PipelineObserver* observer = nullptr);

  /// Shard-scoped variant: the loaded world is narrowed through
  /// apply_shard_filter (no-op on a pre-split shard archive) before the
  /// pipeline runs, and the scope's ownership predicate is installed so
  /// owned_stats() attributes each global statistic to exactly one shard.
  [[nodiscard]] static std::shared_ptr<const StalenessIndex> from_archive(
      const std::string& path, const ShardScope& scope,
      obs::PipelineObserver* observer = nullptr);

  /// Builds the successor snapshot for one applied delta. Structural
  /// updates only: base indexes are copied and extended in place — new
  /// certificates touch only their own SPKI buckets and the two validity
  /// arrays, new stale records touch only their at-risk domain buckets —
  /// and the interval index is rebuilt over all windows (records are few
  /// relative to certificates). The base snapshot is untouched; in-flight
  /// queries keep their shared_ptr. Reports under the obs stage name
  /// "query_index_patch". Throws LogicError if the patch was built against
  /// a different base corpus.
  [[nodiscard]] std::shared_ptr<const StalenessIndex> with_patch(
      IndexPatch patch, obs::PipelineObserver* observer = nullptr) const;

  /// How many deltas were folded in since the from-scratch build (0 for a
  /// freshly constructed or from_archive snapshot).
  [[nodiscard]] std::uint64_t patch_generation() const {
    return patch_generation_;
  }

  [[nodiscard]] const store::ArchiveMeta& meta() const { return meta_; }
  /// The (merged) pipeline result this snapshot serves — the feed layer
  /// reads the base detector output through this when building patches.
  [[nodiscard]] const core::PipelineResult& result() const { return result_; }
  [[nodiscard]] const core::CertificateCorpus& corpus() const {
    return result_.corpus;
  }
  [[nodiscard]] const std::vector<StaleRecord>& stale_records() const {
    return records_;
  }
  [[nodiscard]] const StaleRecord& record(std::uint32_t index) const;
  /// Record indices of one stale class, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& of_class(
      core::StaleClass cls) const;

  // --- Point lookups (all O(1) hash probes or O(log n + k)) ---

  /// Corpus indices of certificates naming the FQDN exactly (after
  /// lowercasing and wildcard stripping), ascending.
  [[nodiscard]] std::vector<std::uint32_t> certs_for_fqdn(
      const std::string& fqdn) const;
  /// Corpus indices of certificates embedding the key with this SPKI
  /// SHA-256 fingerprint (lowercase hex), ascending. The custody question:
  /// every certificate here shares one private key.
  [[nodiscard]] std::vector<std::uint32_t> certs_for_key(
      const std::string& spki_hex) const;

  /// Stale records endangering `domain` whose staleness window contains
  /// `date`. A record endangers a domain when the domain is one of the
  /// certificate's at-risk names (every name for key compromise; the names
  /// under the trigger e2LD otherwise) or the trigger domain itself.
  [[nodiscard]] std::vector<std::uint32_t> stale_records_for(
      const std::string& domain, util::Date date) const;
  /// Same, for any overlap with a half-open date range.
  [[nodiscard]] std::vector<std::uint32_t> stale_records_for_range(
      const std::string& domain, const util::DateInterval& range) const;
  [[nodiscard]] bool is_stale(const std::string& domain, util::Date date) const {
    return !stale_records_for(domain, date).empty();
  }

  /// Record indices of every staleness window containing `date`,
  /// optionally restricted to one class — the corpus-wide stabbing query.
  [[nodiscard]] std::vector<std::uint32_t> stale_at(
      util::Date date, std::optional<core::StaleClass> cls = {}) const;

  /// Per-domain aggregate (all dates).
  [[nodiscard]] DomainSummary stale_summary(const std::string& domain) const;

  /// Earliest joined revocation of the certificate with this serial
  /// (lowercase hex, no 0x). nullopt when the serial never joined.
  [[nodiscard]] std::optional<RevocationStatus> revocation_status(
      const std::string& serial_hex) const;

  /// Corpus certificates valid on `date` (two binary searches).
  [[nodiscard]] std::size_t valid_cert_count(util::Date date) const;

  struct Stats {
    std::uint64_t certificates = 0;
    std::uint64_t stale_records = 0;
    std::array<std::uint64_t, core::kStaleClassCount> by_class{};
    std::uint64_t distinct_keys = 0;
    std::uint64_t distinct_domains = 0;  // at-risk domain index entries
    std::uint64_t revoked_serials = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Installs a shard ownership predicate (owns(routing_key) == "this
  /// shard is the key's home") and recomputes owned_stats(). Must be
  /// called before the snapshot is shared across threads — from_archive's
  /// shard overload and the feed runtime do so during construction.
  /// Attribution rules (what string is handed to owns()):
  ///   certificate   -> routing_domain of its first SAN/CN name
  ///   stale record  -> routing_domain of its trigger domain
  ///   distinct key  -> the SPKI hex string itself
  ///   revoked serial-> the serial hex string itself
  ///   domain        -> routing_domain of itself
  /// Certificates replicated onto several shards share a first name, and
  /// the shard plan replicates each certificate onto its SPKI's and
  /// serial's home shards, so exactly one shard owns each entity; summing
  /// owned_stats() across a full shard set reproduces the single-node
  /// stats() (differential-tested).
  void set_ownership(std::function<bool(const std::string&)> owns);

  /// Whether set_ownership installed a predicate (i.e. this is one shard
  /// of a partition rather than a whole-world snapshot).
  [[nodiscard]] bool sharded() const { return owns_ != nullptr; }

  /// The slice of stats() this shard is the owner of; equal to stats()
  /// when unsharded. Global summaries sum these across shards without
  /// double-counting replicated certificates.
  [[nodiscard]] const Stats& owned_stats() const { return owned_stats_; }

 private:
  /// Patch build: copies `base` and folds in one delta's worth of new
  /// certificates and stale records (see with_patch).
  StalenessIndex(const StalenessIndex& base, IndexPatch patch,
                 obs::PipelineObserver* observer);

  /// True iff this shard owns the certificate (first-name attribution).
  [[nodiscard]] bool owns_certificate(std::uint32_t cert_index) const;
  /// Recomputes owned_stats_ from owns_ (identity copy when unsharded).
  void recompute_owned_stats();

  core::PipelineResult result_;
  store::ArchiveMeta meta_;
  std::uint64_t patch_generation_ = 0;
  std::vector<StaleRecord> records_;
  std::array<std::vector<std::uint32_t>, core::kStaleClassCount> by_class_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> key_to_certs_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> domain_to_records_;
  std::unordered_map<std::string, RevocationStatus> serial_to_revocation_;
  IntervalIndex staleness_intervals_;       // payload = record index
  std::vector<std::int64_t> validity_begins_;  // sorted days-since-epoch
  std::vector<std::int64_t> validity_ends_;
  Stats stats_;
  std::function<bool(const std::string&)> owns_;  // null when unsharded
  Stats owned_stats_;
};

/// The at-risk names of one stale certificate (shared with the analyzer's
/// semantics): every SAN/CN name for key compromise, otherwise only the
/// names under the trigger e2LD — plus the trigger domain itself, so e2LD
/// queries hit even when the certificate only names subdomains.
std::vector<std::string> at_risk_domains(const core::CertificateCorpus& corpus,
                                         std::uint32_t cert_index,
                                         core::StaleClass cls,
                                         const std::string& trigger_domain);

/// Serving-side domain normalization: lowercase + single wildcard strip.
std::string normalize_domain(const std::string& domain);

}  // namespace stalecert::query
