#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "stalecert/query/http.hpp"
#include "stalecert/util/mutex.hpp"

namespace stalecert::query {

/// Minimal HTTP/1.1 server over POSIX sockets: one listening socket, a
/// fixed pool of worker threads that each loop accept -> read -> handle ->
/// write, persistent connections (keep-alive) per RFC 9112 defaults, and
/// graceful drain on stop(): the listener is shut down so no new
/// connections are admitted, while in-flight requests run to completion
/// before the workers join.
///
/// The handler runs concurrently on every worker thread, so it must be
/// thread-safe; StaledService (service.hpp) is the intended handler.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Optional post-write observability hook: invoked on the worker thread
  /// after the response bytes went out, with the wall-clock the socket
  /// write took. Must be thread-safe.
  using RequestHook = std::function<void(
      const HttpRequest&, const HttpResponse&, std::chrono::nanoseconds)>;

  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read the outcome from port().
    std::uint16_t port = 0;
    unsigned threads = 4;
    /// Upper bound on one request head; longer heads get 400 + close.
    std::size_t max_request_bytes = 64 * 1024;
  };

  HttpServer(Options options, Handler handler);
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  /// Stops the server if still running.
  ~HttpServer();

  /// Binds, listens, and spawns the worker pool. Throws QueryError when
  /// the address cannot be bound.
  void start();

  /// Installs the post-write hook. Call before start(); the hook runs
  /// concurrently on every worker thread.
  void set_request_hook(RequestHook hook) { request_hook_ = std::move(hook); }

  /// The bound port (useful with Options::port == 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Total requests served so far (all workers).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }

  /// Graceful drain: stop accepting, finish in-flight requests, join the
  /// pool. Idempotent.
  void stop();

 private:
  void worker_loop();
  void serve_connection(int client_fd);
  void track_connection(int client_fd);
  void untrack_and_close(int client_fd);

  Options options_;
  Handler handler_;
  RequestHook request_hook_;
  int listen_fd_ = -1;
  /// Live client connections; stop() shuts their read side down so workers
  /// parked in recv() between keep-alive requests wake with EOF.
  util::Mutex connections_mutex_;
  std::unordered_set<int> connections_ GUARDED_BY(connections_mutex_);
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::vector<std::thread> workers_;
};

}  // namespace stalecert::query
