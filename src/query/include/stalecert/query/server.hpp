#pragma once

// The serving transport moved to src/net: net::HttpServer is the epoll
// reactor that replaced the blocking accept-pool server that used to live
// here. The alias keeps query's public surface (StaledService plugs into
// HttpServer::Handler) stable.

#include "stalecert/net/server.hpp"
#include "stalecert/query/http.hpp"

namespace stalecert::query {

using HttpServer = net::HttpServer;

}  // namespace stalecert::query
