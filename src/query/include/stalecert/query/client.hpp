#pragma once

// The blocking keep-alive client moved to src/net (shared response codec,
// same deadline semantics). The alias keeps the query-tier vocabulary for
// the CLI, the serving tests and bench_query.

#include "stalecert/net/client.hpp"
#include "stalecert/query/http.hpp"

namespace stalecert::query {

using HttpClient = net::HttpClient;

using net::http_get;

}  // namespace stalecert::query
