#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stalecert/obs/event_log.hpp"
#include "stalecert/query/server.hpp"

namespace stalecert::query {

/// Parsed staled command line. Split out of the daemon so flag handling is
/// unit-testable without spawning a process.
struct StaledOptions {
  HttpServer::Options server;
  std::string archive_path;
  /// --log-file PATH: mirror events as JSONL here (stderr stays on).
  std::string log_file;
  /// Effective level: --log-level beats STALECERT_LOG_LEVEL beats info.
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  /// True when the level came from an explicit --log-level flag (the env
  /// fallback is skipped in that case).
  bool log_level_from_flag = false;
  /// --feed-dir PATH: enable feed mode — apply .scwd deltas found here at
  /// startup, then poll for new ones. Empty = feed mode off.
  std::string feed_dir;
  /// --feed-poll-ms N: delta poll interval in feed mode.
  unsigned feed_poll_ms = 1000;
  /// --shard k/N: serve shard k of an N-way cluster partition (k counts
  /// from 0). shard_count == 0 means unsharded, the default.
  unsigned shard_index = 0;
  unsigned shard_count = 0;
};

/// Outcome of parsing: either options or a usage error message.
struct StaledOptionsResult {
  std::optional<StaledOptions> options;
  std::string error;  // non-empty iff !options

  [[nodiscard]] bool ok() const { return options.has_value(); }
};

/// Parses staled's argv (excluding argv[0]). `env_log_level` is the value
/// of STALECERT_LOG_LEVEL (nullptr when unset) — injected so tests don't
/// have to mutate the process environment.
StaledOptionsResult parse_staled_options(const std::vector<std::string>& args,
                                         const char* env_log_level);

/// One-line flag synopsis for usage messages.
std::string staled_usage_line();

}  // namespace stalecert::query
