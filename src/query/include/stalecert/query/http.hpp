#pragma once

// The HTTP types and the error hierarchy moved to src/net (the shared
// transport layer); these aliases keep the query-tier vocabulary — every
// call site, test and tool keeps compiling and the exception contracts
// (QueryTimeoutError = "slow", QueryError = "down") are unchanged because
// they ARE the net types.

#include "stalecert/net/http.hpp"

namespace stalecert::query {

using QueryError = net::NetError;
using QueryTimeoutError = net::NetTimeoutError;

using HttpRequest = net::HttpRequest;
using HttpResponse = net::HttpResponse;

using net::json_escape;
using net::parse_request;
using net::percent_decode;
using net::serialize_response;
using net::status_text;

}  // namespace stalecert::query
