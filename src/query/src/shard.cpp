#include "stalecert/query/shard.hpp"

#include <utility>

#include "stalecert/dns/name.hpp"
#include "stalecert/query/index.hpp"
#include "stalecert/store/errors.hpp"

namespace stalecert::query {

std::string routing_domain(const std::string& name) {
  const std::string normalized = normalize_domain(name);
  const auto e2 = dns::e2ld(normalized);
  return e2 ? *e2 : normalized;
}

store::LoadedWorld apply_shard_filter(store::LoadedWorld world,
                                      const ShardScope& scope) {
  const std::string tag = "#shard-" + scope.label;
  const auto pos = world.meta.profile.find("#shard-");
  if (pos != std::string::npos) {
    if (world.meta.profile.substr(pos) != tag) {
      throw store::ArchiveError(
          "archive is pre-split for shard '" + world.meta.profile.substr(pos) +
          "' but this process serves '" + tag + "'");
    }
    return world;  // pre-split shard archive: already filtered and tagged
  }
  store::LoadedWorld filtered = store::filter_world(world, scope.filter);
  filtered.meta.profile += tag;
  return filtered;
}

}  // namespace stalecert::query
