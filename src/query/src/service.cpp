#include "stalecert/query/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "stalecert/obs/exposition.hpp"
#include "stalecert/obs/quantile.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::query {

namespace {

/// Latency buckets: 1µs .. 1s, roughly ×4 steps — point lookups sit at the
/// bottom, archive-sized summaries near the middle.
std::vector<double> latency_bounds() {
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0};
}

std::string date_json(util::Date d) { return "\"" + d.to_string() + "\""; }

HttpResponse bad_request(const std::string& detail) {
  return {400, "application/json",
          "{\"error\":\"" + json_escape(detail) + "\"}\n"};
}

void append_record_json(std::ostringstream& out, const StalenessIndex& index,
                        std::uint32_t record_index) {
  const StaleRecord& record = index.record(record_index);
  const auto& cert = index.corpus().at(record.cert_index);
  out << "{\"class\":\"" << json_escape(core::to_string(record.cls))
      << "\",\"event_date\":" << date_json(record.event_date)
      << ",\"staleness_begin\":" << date_json(record.staleness.begin())
      << ",\"staleness_end\":" << date_json(record.staleness.end())
      << ",\"staleness_days\":" << record.staleness.days()
      << ",\"trigger_domain\":\"" << json_escape(record.trigger_domain)
      << "\",\"serial\":\"" << json_escape(cert.serial_hex())
      << "\",\"spki\":\"" << json_escape(cert.subject_key().fingerprint_hex())
      << "\"";
  if (record.reason) {
    out << ",\"reason\":\"" << json_escape(revocation::to_string(*record.reason))
        << "\"";
  }
  out << "}";
}

}  // namespace

StaledService::StaledService(std::string archive_path)
    : archive_path_(std::move(archive_path)) {
  // Pre-register the reload counters so /metrics shows them at zero.
  registry_.counter("stalecert_staled_reloads_total", {{"result", "ok"}},
                    "Successful snapshot reloads");
  registry_.counter("stalecert_staled_reloads_total", {{"result", "error"}},
                    "Failed snapshot reloads (previous snapshot kept)");
}

void StaledService::load() {
  auto index = StalenessIndex::from_archive(archive_path_);
  registry_
      .gauge("stalecert_staled_index_stale_records", {},
             "Stale records in the serving snapshot")
      .set(static_cast<double>(index->stats().stale_records));
  registry_
      .gauge("stalecert_staled_index_certificates", {},
             "Corpus certificates in the serving snapshot")
      .set(static_cast<double>(index->stats().certificates));
  cell_.set(std::move(index));
  registry_
      .gauge("stalecert_staled_index_generation", {},
             "Monotonic serving snapshot generation")
      .set(static_cast<double>(cell_.generation()));
}

bool StaledService::reload() {
  try {
    load();
    registry_.counter("stalecert_staled_reloads_total", {{"result", "ok"}}).inc();
    return true;
  } catch (const std::exception&) {
    registry_.counter("stalecert_staled_reloads_total", {{"result", "error"}})
        .inc();
    return false;
  }
}

HttpResponse StaledService::handle(const HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  std::string endpoint = "other";
  const auto index = cell_.get();
  const HttpResponse response = dispatch(request, &endpoint, index);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  registry_
      .counter("stalecert_staled_requests_total",
               {{"endpoint", endpoint},
                {"code", std::to_string(response.status)}},
               "Requests served by endpoint and status code")
      .inc();
  registry_
      .histogram("stalecert_staled_request_duration_seconds", latency_bounds(),
                 {{"endpoint", endpoint}}, "Request latency by endpoint")
      .observe(elapsed.count());
  return response;
}

HttpResponse StaledService::dispatch(
    const HttpRequest& request, std::string* endpoint,
    const std::shared_ptr<const StalenessIndex>& index) {
  const std::string& path = request.path;

  if (path == "/healthz") {
    *endpoint = "healthz";
    if (index == nullptr) return {503, "text/plain", "loading\n"};
    return {200, "text/plain", "ok\n"};
  }
  if (path == "/metrics") {
    *endpoint = "metrics";
    return {200, "text/plain; version=0.0.4",
            obs::to_prometheus(registry_.snapshot())};
  }

  if (index == nullptr) {
    return {503, "application/json", "{\"error\":\"index not loaded\"}\n"};
  }
  if (path == "/v1/stale") {
    *endpoint = "stale";
    return handle_stale(request, *index);
  }
  if (util::starts_with(path, "/v1/key/")) {
    *endpoint = "key";
    return handle_key(path.substr(std::string("/v1/key/").size()), *index);
  }
  if (path == "/v1/summary") {
    *endpoint = "summary";
    return handle_summary(request, *index);
  }
  if (path == "/v1/revocation") {
    *endpoint = "revocation";
    return handle_revocation(request, *index);
  }
  return {404, "application/json", "{\"error\":\"no such endpoint\"}\n"};
}

HttpResponse StaledService::handle_stale(const HttpRequest& request,
                                         const StalenessIndex& index) const {
  const auto domain = request.param("domain");
  const auto date_text = request.param("date");
  if (!domain || domain->empty()) return bad_request("missing domain parameter");
  if (!date_text || date_text->empty()) return bad_request("missing date parameter");
  util::Date date;
  try {
    date = util::Date::parse(*date_text);
  } catch (const ParseError&) {
    return bad_request("bad date (want YYYY-MM-DD): " + *date_text);
  }

  const auto matches = index.stale_records_for(*domain, date);
  std::ostringstream out;
  out << "{\"domain\":\"" << json_escape(normalize_domain(*domain))
      << "\",\"date\":" << date_json(date) << ",\"stale\":"
      << (matches.empty() ? "false" : "true") << ",\"matches\":[";
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (i > 0) out << ",";
    append_record_json(out, index, matches[i]);
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_key(const std::string& spki_hex,
                                       const StalenessIndex& index) const {
  if (spki_hex.empty()) return bad_request("missing SPKI fingerprint");
  const auto certs = index.certs_for_key(spki_hex);
  std::ostringstream out;
  out << "{\"spki\":\"" << json_escape(util::to_lower(spki_hex))
      << "\",\"certificates\":[";
  for (std::size_t i = 0; i < certs.size(); ++i) {
    const auto& cert = index.corpus().at(certs[i]);
    if (i > 0) out << ",";
    out << "{\"index\":" << certs[i] << ",\"serial\":\""
        << json_escape(cert.serial_hex()) << "\",\"not_before\":"
        << date_json(cert.not_before()) << ",\"not_after\":"
        << date_json(cert.not_after()) << ",\"names\":[";
    const auto names = cert.dns_names();
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (j > 0) out << ",";
      out << "\"" << json_escape(names[j]) << "\"";
    }
    out << "]}";
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_summary(const HttpRequest& request,
                                           const StalenessIndex& index) {
  std::ostringstream out;
  if (const auto domain = request.param("domain"); domain && !domain->empty()) {
    const DomainSummary summary = index.stale_summary(*domain);
    out << "{\"domain\":\"" << json_escape(summary.domain)
        << "\",\"certificates\":" << summary.certificates
        << ",\"stale_total\":" << summary.stale_total() << ",\"by_class\":{";
    for (std::size_t i = 0; i < core::kAllStaleClasses.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(core::to_string(core::kAllStaleClasses[i]))
          << "\":" << summary.stale_by_class[i];
    }
    out << "}";
    if (summary.earliest_event) {
      out << ",\"earliest_event\":" << date_json(*summary.earliest_event);
    }
    if (summary.latest_staleness_end) {
      out << ",\"latest_staleness_end\":"
          << date_json(*summary.latest_staleness_end);
    }
    out << "}\n";
    return {200, "application/json", out.str()};
  }

  const auto& stats = index.stats();
  const auto& meta = index.meta();
  out << "{\"profile\":\"" << json_escape(meta.profile)
      << "\",\"seed\":" << meta.seed << ",\"window\":{\"start\":"
      << date_json(meta.start) << ",\"end\":" << date_json(meta.end)
      << "},\"generation\":" << cell_.generation()
      << ",\"certificates\":" << stats.certificates
      << ",\"stale_records\":" << stats.stale_records << ",\"by_class\":{";
  for (std::size_t i = 0; i < core::kAllStaleClasses.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(core::to_string(core::kAllStaleClasses[i]))
        << "\":" << stats.by_class[i];
  }
  out << "},\"distinct_keys\":" << stats.distinct_keys
      << ",\"revoked_serials\":" << stats.revoked_serials;

  // Request latency summary across all endpoints so far — the obs
  // quantile helper applied to this registry's own histograms.
  std::uint64_t requests = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  for (const auto& histogram : registry_.snapshot().histograms) {
    if (histogram.name != "stalecert_staled_request_duration_seconds") continue;
    const auto summary = obs::summarize_histogram(histogram);
    if (summary.count == 0) continue;
    requests += summary.count;
    p50 = std::max(p50, summary.p50);
    p99 = std::max(p99, summary.p99);
  }
  out << ",\"requests\":{\"count\":" << requests << ",\"p50_seconds\":" << p50
      << ",\"p99_seconds\":" << p99 << "}}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_revocation(const HttpRequest& request,
                                              const StalenessIndex& index) const {
  const auto serial = request.param("serial");
  if (!serial || serial->empty()) return bad_request("missing serial parameter");
  const auto status = index.revocation_status(*serial);
  std::ostringstream out;
  out << "{\"serial\":\"" << json_escape(util::to_lower(*serial)) << "\"";
  if (status) {
    out << ",\"revoked\":true,\"revocation_date\":"
        << date_json(status->revocation_date) << ",\"reason\":\""
        << json_escape(revocation::to_string(status->reason))
        << "\",\"key_compromise\":"
        << (status->key_compromise() ? "true" : "false")
        << ",\"cert_index\":" << status->cert_index;
  } else {
    out << ",\"revoked\":false";
  }
  out << "}\n";
  return {200, "application/json", out.str()};
}

}  // namespace stalecert::query
