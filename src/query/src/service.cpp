#include "stalecert/query/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "stalecert/obs/exposition.hpp"
#include "stalecert/obs/quantile.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::query {

namespace {

using Clock = std::chrono::steady_clock;

/// Latency buckets: 1µs .. 1s, roughly ×4 steps — point lookups sit at the
/// bottom, archive-sized summaries near the middle. The windowed histograms
/// share these bounds so lifetime and windowed quantiles are comparable.
std::vector<double> latency_bounds() {
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0};
}

/// The fixed endpoint label set; windows_ is keyed by exactly these.
constexpr const char* kEndpoints[] = {"stale",   "key",     "summary",
                                      "revocation", "healthz", "metrics",
                                      "statusz", "ingest",  "other"};

constexpr std::chrono::seconds kWindows[] = {std::chrono::seconds(60),
                                             std::chrono::seconds(300)};

const char* window_label(std::chrono::seconds window) {
  return window == std::chrono::seconds(60) ? "1m" : "5m";
}

std::string date_json(util::Date d) { return "\"" + d.to_string() + "\""; }

std::string format_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string micros_fixed(std::chrono::nanoseconds d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(d.count()) / 1e3);
  return buf;
}

HttpResponse bad_request(const std::string& detail) {
  return {400, "application/json",
          "{\"error\":\"" + json_escape(detail) + "\"}\n"};
}

void append_record_json(std::ostringstream& out, const StalenessIndex& index,
                        std::uint32_t record_index) {
  const StaleRecord& record = index.record(record_index);
  const auto& cert = index.corpus().at(record.cert_index);
  out << "{\"class\":\"" << json_escape(core::to_string(record.cls))
      << "\",\"event_date\":" << date_json(record.event_date)
      << ",\"staleness_begin\":" << date_json(record.staleness.begin())
      << ",\"staleness_end\":" << date_json(record.staleness.end())
      << ",\"staleness_days\":" << record.staleness.days()
      << ",\"trigger_domain\":\"" << json_escape(record.trigger_domain)
      << "\",\"serial\":\"" << json_escape(cert.serial_hex())
      << "\",\"spki\":\"" << json_escape(cert.subject_key().fingerprint_hex())
      << "\"";
  if (record.reason) {
    out << ",\"reason\":\"" << json_escape(revocation::to_string(*record.reason))
        << "\"";
  }
  out << "}";
}

/// Error-budget burn rate: observed bad fraction over the allowed bad
/// fraction. 1.0 means burning budget exactly as fast as the SLO allows.
double burn_rate(std::uint64_t bad, std::uint64_t total, double allowed) {
  if (total == 0 || allowed <= 0.0) return 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / allowed;
}

/// RAII span timer against a RequestTrace (null-safe).
class TraceSpan {
 public:
  TraceSpan(obs::RequestTrace* trace, const char* name)
      : trace_(trace), name_(name), start_(Clock::now()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->add_span(name_, Clock::now() - start_);
  }

 private:
  obs::RequestTrace* trace_;
  const char* name_;
  Clock::time_point start_;
};

}  // namespace

StaledService::EndpointWindow::EndpointWindow()
    : requests(std::chrono::seconds(300), std::chrono::seconds(5)),
      errors(std::chrono::seconds(300), std::chrono::seconds(5)),
      slow(std::chrono::seconds(300), std::chrono::seconds(5)),
      latency(latency_bounds(), std::chrono::seconds(300),
              std::chrono::seconds(5)) {}

StaledService::StaledService(std::string archive_path, ServiceOptions options)
    : archive_path_(std::move(archive_path)),
      options_(std::move(options)),
      slow_ring_(options_.slow_trace_capacity),
      started_(Clock::now()) {
  // Pre-register the reload counters so /metrics shows them at zero.
  registry_.counter("stalecert_staled_reloads_total", {{"result", "ok"}},
                    "Successful snapshot reloads");
  registry_.counter("stalecert_staled_reloads_total", {{"result", "error"}},
                    "Failed snapshot reloads (previous snapshot kept)");
  if (options_.shard_count > 0) {
    registry_
        .gauge("stalecert_staled_shard_index", {},
               "This process's shard number within the cluster partition")
        .set(static_cast<double>(options_.shard_index));
    registry_
        .gauge("stalecert_staled_shard_count", {},
               "Total shards in the cluster partition (0 = unsharded)")
        .set(static_cast<double>(options_.shard_count));
  }
  for (const char* endpoint : kEndpoints) windows_.try_emplace(endpoint);
}

void StaledService::load() {
  const auto build_start = Clock::now();
  auto index = options_.snapshot_builder
                   ? options_.snapshot_builder(archive_path_)
                   : StalenessIndex::from_archive(archive_path_);
  registry_
      .gauge("stalecert_staled_index_stale_records", {},
             "Stale records in the serving snapshot")
      .set(static_cast<double>(index->stats().stale_records));
  registry_
      .gauge("stalecert_staled_index_certificates", {},
             "Corpus certificates in the serving snapshot")
      .set(static_cast<double>(index->stats().certificates));
  const std::uint64_t certificates = index->stats().certificates;
  const std::uint64_t stale_records = index->stats().stale_records;
  cell_.set(std::move(index));
  registry_
      .gauge("stalecert_staled_index_generation", {},
             "Monotonic serving snapshot generation")
      .set(static_cast<double>(cell_.generation()));
  const auto now = Clock::now();
  last_load_offset_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - started_)
          .count(),
      std::memory_order_relaxed);
  log_.info("snapshot loaded",
            {{"archive", archive_path_},
             {"generation", std::to_string(cell_.generation())},
             {"certificates", std::to_string(certificates)},
             {"stale_records", std::to_string(stale_records)},
             {"build_ms",
              std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                                 now - build_start)
                                 .count())}});
}

void StaledService::publish(std::shared_ptr<const StalenessIndex> index,
                            const std::string& source) {
  if (!index) return;
  registry_
      .gauge("stalecert_staled_index_stale_records", {},
             "Stale records in the serving snapshot")
      .set(static_cast<double>(index->stats().stale_records));
  registry_
      .gauge("stalecert_staled_index_certificates", {},
             "Corpus certificates in the serving snapshot")
      .set(static_cast<double>(index->stats().certificates));
  const std::uint64_t certificates = index->stats().certificates;
  const std::uint64_t stale_records = index->stats().stale_records;
  cell_.set(std::move(index));
  registry_
      .gauge("stalecert_staled_index_generation", {},
             "Monotonic serving snapshot generation")
      .set(static_cast<double>(cell_.generation()));
  last_ingest_offset_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           started_)
          .count(),
      std::memory_order_relaxed);
  last_load_offset_ns_.store(
      last_ingest_offset_ns_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  log_.info("snapshot published",
            {{"source", source},
             {"generation", std::to_string(cell_.generation())},
             {"certificates", std::to_string(certificates)},
             {"stale_records", std::to_string(stale_records)}});
}

bool StaledService::reload() {
  const auto start = Clock::now();
  try {
    load();
    registry_.counter("stalecert_staled_reloads_total", {{"result", "ok"}}).inc();
    log_.info("reload ok",
              {{"generation", std::to_string(cell_.generation())},
               {"rebuild_ms",
                std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   Clock::now() - start)
                                   .count())}});
    return true;
  } catch (const std::exception& e) {
    registry_.counter("stalecert_staled_reloads_total", {{"result", "error"}})
        .inc();
    log_.error("reload failed, previous snapshot kept",
               {{"archive", archive_path_}, {"error", e.what()}});
    return false;
  }
}

void StaledService::set_ingest_handler(IngestHandler handler) {
  ingest_handler_ = std::move(handler);
  if (!ingest_handler_) return;
  // Pre-register the ingest metrics so /metrics shows them at zero.
  registry_.counter("stalecert_staled_ingest_total", {{"result", "ok"}},
                    "Deltas applied to the serving snapshot");
  registry_.counter("stalecert_staled_ingest_total", {{"result", "error"}},
                    "Rejected deltas (previous snapshot kept)");
  registry_.counter("stalecert_staled_ingest_rebuilds_total", {},
                    "Deltas that fell back to a full pipeline rebuild");
  registry_.gauge("stalecert_staled_feed_generation", {},
                  "Deltas folded in since the base snapshot");
  registry_.gauge("stalecert_staled_feed_horizon_days", {},
                  "Last day covered by applied data, days since epoch");
  registry_.counter("stalecert_staled_ingest_busy_total", {},
                    "POST /ingest answered 503 because an apply was in flight");
}

IngestOutcome StaledService::ingest(const IngestSource& source) {
  if (!ingest_handler_) {
    return {.ok = false, .status = 404, .message = "feed mode disabled"};
  }
  const auto start = Clock::now();
  IngestOutcome outcome;
  {
    const util::MutexLock lock(ingest_mutex_);
    outcome = apply_ingest_locked(source);
  }
  record_ingest(outcome, source, start);
  return outcome;
}

std::optional<IngestOutcome> StaledService::try_ingest(
    const IngestSource& source) {
  if (!ingest_handler_) {
    return IngestOutcome{
        .ok = false, .status = 404, .message = "feed mode disabled"};
  }
  const auto start = Clock::now();
  if (!ingest_mutex_.try_lock()) return std::nullopt;
  const IngestOutcome outcome = apply_ingest_locked(source);
  ingest_mutex_.unlock();
  record_ingest(outcome, source, start);
  return outcome;
}

IngestOutcome StaledService::apply_ingest_locked(const IngestSource& source) {
  IngestOutcome outcome = ingest_handler_(source);
  if (outcome.ok && outcome.index) cell_.set(outcome.index);
  return outcome;
}

void StaledService::record_ingest(const IngestOutcome& outcome,
                                  const IngestSource& source,
                                  Clock::time_point start) {
  const auto now = Clock::now();
  const double seconds = std::chrono::duration<double>(now - start).count();
  registry_
      .histogram("stalecert_staled_ingest_apply_seconds", latency_bounds(), {},
                 "Wall-clock per delta apply (including failures)")
      .observe(seconds);

  const std::string origin_label =
      source.path.empty() ? source.origin : source.origin + " " + source.path;
  if (outcome.ok) {
    deltas_applied_.fetch_add(1, std::memory_order_relaxed);
    if (outcome.rebuilt) {
      ingest_rebuilds_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("stalecert_staled_ingest_rebuilds_total", {}).inc();
    }
    feed_generation_.store(outcome.feed_generation, std::memory_order_relaxed);
    registry_.counter("stalecert_staled_ingest_total", {{"result", "ok"}}).inc();
    registry_.gauge("stalecert_staled_feed_generation", {})
        .set(static_cast<double>(outcome.feed_generation));
    registry_.gauge("stalecert_staled_index_generation", {},
                    "Monotonic serving snapshot generation")
        .set(static_cast<double>(cell_.generation()));
    if (outcome.index) {
      registry_.gauge("stalecert_staled_index_stale_records", {})
          .set(static_cast<double>(outcome.index->stats().stale_records));
      registry_.gauge("stalecert_staled_index_certificates", {})
          .set(static_cast<double>(outcome.index->stats().certificates));
    }
    try {
      const util::Date horizon = util::Date::parse(outcome.horizon);
      feed_horizon_days_.store(horizon.days_since_epoch(),
                               std::memory_order_relaxed);
      registry_.gauge("stalecert_staled_feed_horizon_days", {})
          .set(static_cast<double>(horizon.days_since_epoch()));
    } catch (const ParseError&) {
      // Handler did not report a horizon; gauges keep their last value.
    }
    last_ingest_offset_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - started_)
            .count(),
        std::memory_order_relaxed);
    log_.info("delta applied",
              {{"source", origin_label},
               {"generation", std::to_string(outcome.feed_generation)},
               {"horizon", outcome.horizon},
               {"new_certificates", std::to_string(outcome.new_certificates)},
               {"new_stale_records", std::to_string(outcome.new_stale_records)},
               {"rebuilt", outcome.rebuilt ? "true" : "false"},
               {"apply_ms", format_double(seconds * 1e3)}});
  } else {
    ingest_errors_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("stalecert_staled_ingest_total", {{"result", "error"}})
        .inc();
    log_.warn("delta rejected, previous snapshot kept",
              {{"source", origin_label},
               {"status", std::to_string(outcome.status)},
               {"error", outcome.message}});
  }
}

HttpResponse StaledService::handle_ingest(const HttpRequest& request,
                                          obs::RequestTrace* trace) {
  if (!ingest_handler_) {
    return {404, "application/json",
            "{\"error\":\"feed mode disabled (start staled with "
            "--feed-dir or install an ingest handler)\"}\n"};
  }
  if (request.method != "POST") {
    return {405, "application/json",
            "{\"error\":\"POST a .scwd delta (raw body) or POST "
            "/ingest?path=<file>\"}\n"};
  }
  IngestSource source;
  source.origin = "http";
  if (const auto path = request.param("path"); path && !path->empty()) {
    source.path = *path;
  } else if (!request.body.empty()) {
    source.bytes = request.body;
  } else {
    return bad_request("empty ingest: send the .scwd bytes or ?path=");
  }

  const auto apply_start = Clock::now();
  const std::optional<IngestOutcome> applied = try_ingest(source);
  trace->add_span("apply", Clock::now() - apply_start);

  const TraceSpan serialize(trace, "serialize");
  if (!applied) {
    // Another delta apply holds the ingest mutex. Answer immediately so the
    // feeder can back off and retry instead of queueing requests behind a
    // rebuild; the poll loop and SIGHUP reload still use the blocking path.
    registry_.counter("stalecert_staled_ingest_busy_total", {}).inc();
    HttpResponse busy{503, "application/json",
                      "{\"applied\":false,\"error\":\"ingest busy: another "
                      "delta apply is in flight\"}\n"};
    busy.headers["Retry-After"] = "1";
    return busy;
  }
  const IngestOutcome& outcome = *applied;
  std::ostringstream out;
  if (!outcome.ok) {
    out << "{\"applied\":false,\"error\":\"" << json_escape(outcome.message)
        << "\"}\n";
    return {outcome.status, "application/json", out.str()};
  }
  out << "{\"applied\":true,\"generation\":" << outcome.feed_generation
      << ",\"snapshot_generation\":" << cell_.generation()
      << ",\"horizon\":\"" << json_escape(outcome.horizon)
      << "\",\"new_certificates\":" << outcome.new_certificates
      << ",\"new_stale_records\":" << outcome.new_stale_records
      << ",\"rebuilt\":" << (outcome.rebuilt ? "true" : "false") << "}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle(const HttpRequest& request) {
  const auto start = Clock::now();
  obs::RequestTrace trace;
  trace.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  trace.target = request.target.empty() ? request.path : request.target;
  if (request.parse_duration.count() > 0) {
    trace.add_span("parse", request.parse_duration);
  }

  std::string endpoint = "other";
  const auto index = cell_.get();
  HttpResponse response = dispatch(request, &endpoint, index, &trace);
  response.trace_id = trace.id;

  finish_request(request, &response, std::move(trace), endpoint,
                 Clock::now() - start);
  return response;
}

void StaledService::finish_request(const HttpRequest& request,
                                   HttpResponse* response,
                                   obs::RequestTrace trace,
                                   const std::string& endpoint,
                                   std::chrono::nanoseconds elapsed) {
  trace.endpoint = endpoint;
  trace.status = response->status;
  trace.total = elapsed + request.parse_duration;

  const double seconds = std::chrono::duration<double>(trace.total).count();

  registry_
      .counter("stalecert_staled_requests_total",
               {{"endpoint", endpoint},
                {"code", std::to_string(response->status)}},
               "Requests served by endpoint and status code")
      .inc();
  registry_
      .histogram("stalecert_staled_request_duration_seconds", latency_bounds(),
                 {{"endpoint", endpoint}}, "Request latency by endpoint")
      .observe(seconds);

  EndpointWindow& window = windows_.at(endpoint);
  const auto now = Clock::now();
  window.requests.add(1, now);
  if (response->status >= 500) window.errors.add(1, now);
  if (seconds > options_.latency_slo_seconds) window.slow.add(1, now);
  window.latency.observe(seconds, now);

  if (trace.total >= options_.slow_threshold) {
    obs::LogFields fields = {{"endpoint", endpoint},
                             {"target", trace.target},
                             {"status", std::to_string(trace.status)},
                             {"trace_id", std::to_string(trace.id)},
                             {"total_us", micros_fixed(trace.total)}};
    for (const auto& [name, duration] : trace.spans) {
      fields.emplace_back(std::string(name) + "_us", micros_fixed(duration));
    }
    log_.warn("slow request", std::move(fields));
  }
  slow_ring_.offer(std::move(trace));
}

void StaledService::on_response_written(const HttpResponse& response,
                                        std::chrono::nanoseconds write_duration) {
  if (response.trace_id != 0) {
    slow_ring_.add_late_span(response.trace_id, "write", write_duration);
  }
  registry_
      .histogram("stalecert_staled_response_write_seconds", latency_bounds(), {},
                 "Socket write time per response")
      .observe(std::chrono::duration<double>(write_duration).count());
}

HttpResponse StaledService::dispatch(
    const HttpRequest& request, std::string* endpoint,
    const std::shared_ptr<const StalenessIndex>& index,
    obs::RequestTrace* trace) {
  const auto route_start = Clock::now();
  const std::string& path = request.path;
  const auto routed = [&](const char* name) {
    *endpoint = name;
    trace->add_span("route", Clock::now() - route_start);
  };

  // The server lets POST through for /ingest's sake; every other endpoint
  // is read-only.
  if (request.method == "POST" && path != "/ingest") {
    trace->add_span("route", Clock::now() - route_start);
    return {405, "text/plain", "method not allowed\n"};
  }

  if (path == "/healthz") {
    routed("healthz");
    const TraceSpan serialize(trace, "serialize");
    if (index == nullptr) return {503, "text/plain", "loading\n"};
    return {200, "text/plain", "ok\n"};
  }
  if (path == "/metrics") {
    routed("metrics");
    return handle_metrics(trace);
  }
  if (path == "/statusz") {
    routed("statusz");
    return handle_statusz(request, index, trace);
  }
  if (path == "/ingest") {
    routed("ingest");
    return handle_ingest(request, trace);
  }

  if (index == nullptr) {
    trace->add_span("route", Clock::now() - route_start);
    return {503, "application/json", "{\"error\":\"index not loaded\"}\n"};
  }
  if (path == "/v1/stale") {
    routed("stale");
    return handle_stale(request, *index, trace);
  }
  if (util::starts_with(path, "/v1/key/")) {
    routed("key");
    return handle_key(path.substr(std::string("/v1/key/").size()), *index,
                      trace);
  }
  if (path == "/v1/summary") {
    routed("summary");
    return handle_summary(request, *index, trace);
  }
  if (path == "/v1/revocation") {
    routed("revocation");
    return handle_revocation(request, *index, trace);
  }
  trace->add_span("route", Clock::now() - route_start);
  return {404, "application/json", "{\"error\":\"no such endpoint\"}\n"};
}

HttpResponse StaledService::handle_stale(const HttpRequest& request,
                                         const StalenessIndex& index,
                                         obs::RequestTrace* trace) const {
  const auto domain = request.param("domain");
  const auto date_text = request.param("date");
  if (!domain || domain->empty()) return bad_request("missing domain parameter");
  if (!date_text || date_text->empty()) return bad_request("missing date parameter");
  util::Date date;
  try {
    date = util::Date::parse(*date_text);
  } catch (const ParseError&) {
    return bad_request("bad date (want YYYY-MM-DD): " + *date_text);
  }

  const auto lookup_start = Clock::now();
  const auto matches = index.stale_records_for(*domain, date);
  trace->add_span("lookup", Clock::now() - lookup_start);

  const TraceSpan serialize(trace, "serialize");
  std::ostringstream out;
  out << "{\"domain\":\"" << json_escape(normalize_domain(*domain))
      << "\",\"date\":" << date_json(date) << ",\"stale\":"
      << (matches.empty() ? "false" : "true") << ",\"matches\":[";
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (i > 0) out << ",";
    append_record_json(out, index, matches[i]);
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_key(const std::string& spki_hex,
                                       const StalenessIndex& index,
                                       obs::RequestTrace* trace) const {
  if (spki_hex.empty()) return bad_request("missing SPKI fingerprint");
  const auto lookup_start = Clock::now();
  const auto certs = index.certs_for_key(spki_hex);
  trace->add_span("lookup", Clock::now() - lookup_start);

  const TraceSpan serialize(trace, "serialize");
  // Render each certificate to its JSON object, then sort and dedup the
  // rendered strings. This makes the payload a pure function of the
  // certificate set: single-node and a scatter-gathered cluster (where a
  // cert whose names straddle shards is replicated) agree byte for byte.
  std::vector<std::string> rendered;
  rendered.reserve(certs.size());
  for (const std::uint32_t cert_index : certs) {
    const auto& cert = index.corpus().at(cert_index);
    std::ostringstream item;
    item << "{\"serial\":\"" << json_escape(cert.serial_hex())
         << "\",\"not_before\":" << date_json(cert.not_before())
         << ",\"not_after\":" << date_json(cert.not_after()) << ",\"names\":[";
    const auto names = cert.dns_names();
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (j > 0) item << ",";
      item << "\"" << json_escape(names[j]) << "\"";
    }
    item << "]}";
    rendered.push_back(item.str());
  }
  std::sort(rendered.begin(), rendered.end());
  rendered.erase(std::unique(rendered.begin(), rendered.end()),
                 rendered.end());

  std::ostringstream out;
  out << "{\"spki\":\"" << json_escape(util::to_lower(spki_hex))
      << "\",\"certificates\":[";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out << ",";
    out << rendered[i];
  }
  out << "]}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_summary(const HttpRequest& request,
                                           const StalenessIndex& index,
                                           obs::RequestTrace* trace) {
  std::ostringstream out;
  if (const auto domain = request.param("domain"); domain && !domain->empty()) {
    const auto lookup_start = Clock::now();
    const DomainSummary summary = index.stale_summary(*domain);
    trace->add_span("lookup", Clock::now() - lookup_start);

    const TraceSpan serialize(trace, "serialize");
    out << "{\"domain\":\"" << json_escape(summary.domain)
        << "\",\"certificates\":" << summary.certificates
        << ",\"stale_total\":" << summary.stale_total() << ",\"by_class\":{";
    for (std::size_t i = 0; i < core::kAllStaleClasses.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << json_escape(core::to_string(core::kAllStaleClasses[i]))
          << "\":" << summary.stale_by_class[i];
    }
    out << "}";
    if (summary.earliest_event) {
      out << ",\"earliest_event\":" << date_json(*summary.earliest_event);
    }
    if (summary.latest_staleness_end) {
      out << ",\"latest_staleness_end\":"
          << date_json(*summary.latest_staleness_end);
    }
    out << "}\n";
    return {200, "application/json", out.str()};
  }

  const TraceSpan serialize(trace, "serialize");
  // A sharded node reports its OWNED slice (each entity attributed to
  // exactly one shard) so the router can sum shard summaries into the
  // exact single-node numbers. Traffic-dependent request quantiles live on
  // /statusz, not here: the body must be a pure function of the data so
  // merged cluster summaries can be byte-compared against single-node.
  const auto& stats = index.sharded() ? index.owned_stats() : index.stats();
  const auto& meta = index.meta();
  out << "{\"profile\":\"" << json_escape(meta.profile)
      << "\",\"seed\":" << meta.seed << ",\"window\":{\"start\":"
      << date_json(meta.start) << ",\"end\":" << date_json(meta.end)
      << "},\"generation\":" << cell_.generation()
      << ",\"certificates\":" << stats.certificates
      << ",\"stale_records\":" << stats.stale_records << ",\"by_class\":{";
  for (std::size_t i = 0; i < core::kAllStaleClasses.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(core::to_string(core::kAllStaleClasses[i]))
        << "\":" << stats.by_class[i];
  }
  out << "},\"distinct_keys\":" << stats.distinct_keys
      << ",\"revoked_serials\":" << stats.revoked_serials << "}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_revocation(const HttpRequest& request,
                                              const StalenessIndex& index,
                                              obs::RequestTrace* trace) const {
  const auto serial = request.param("serial");
  if (!serial || serial->empty()) return bad_request("missing serial parameter");
  const auto lookup_start = Clock::now();
  const auto status = index.revocation_status(*serial);
  trace->add_span("lookup", Clock::now() - lookup_start);

  const TraceSpan serialize(trace, "serialize");
  std::ostringstream out;
  out << "{\"serial\":\"" << json_escape(util::to_lower(*serial)) << "\"";
  if (status) {
    out << ",\"revoked\":true,\"revocation_date\":"
        << date_json(status->revocation_date) << ",\"reason\":\""
        << json_escape(revocation::to_string(status->reason))
        << "\",\"key_compromise\":"
        << (status->key_compromise() ? "true" : "false");
  } else {
    out << ",\"revoked\":false";
  }
  out << "}\n";
  return {200, "application/json", out.str()};
}

HttpResponse StaledService::handle_metrics(obs::RequestTrace* trace) {
  const TraceSpan serialize(trace, "serialize");
  export_window_gauges();
  return {200, "text/plain; version=0.0.4",
          obs::to_prometheus(registry_.snapshot())};
}

void StaledService::export_window_gauges() {
  const auto now = Clock::now();
  for (const auto window : kWindows) {
    const char* label = window_label(window);
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    std::uint64_t slow = 0;
    for (const auto& [endpoint, ew] : windows_) {
      const std::uint64_t requests = ew.requests.sum(window, now);
      total += requests;
      errors += ew.errors.sum(window, now);
      slow += ew.slow.sum(window, now);
      registry_
          .gauge("stalecert_staled_window_qps",
                 {{"endpoint", endpoint}, {"window", label}},
                 "Requests per second over the trailing window")
          .set(ew.requests.rate_per_second(window, now));
      const auto sample = ew.latency.snapshot(window, now);
      const auto summary = obs::summarize_histogram(sample);
      registry_
          .gauge("stalecert_staled_window_latency_seconds",
                 {{"endpoint", endpoint}, {"window", label}, {"quantile", "0.5"}},
                 "Windowed request latency quantile")
          .set(summary.p50);
      registry_
          .gauge(
              "stalecert_staled_window_latency_seconds",
              {{"endpoint", endpoint}, {"window", label}, {"quantile", "0.99"}},
              "Windowed request latency quantile")
          .set(summary.p99);
    }
    registry_
        .gauge("stalecert_staled_slo_burn_rate",
               {{"slo", "availability"}, {"window", label}},
               "Error-budget burn rate (1.0 = burning exactly at the SLO)")
        .set(burn_rate(errors, total, 1.0 - options_.availability_slo));
    registry_
        .gauge("stalecert_staled_slo_burn_rate",
               {{"slo", "latency"}, {"window", label}},
               "Error-budget burn rate (1.0 = burning exactly at the SLO)")
        .set(burn_rate(slow, total, 1.0 - options_.latency_slo_fraction));
  }
}

std::string StaledService::statusz_json(
    const std::shared_ptr<const StalenessIndex>& index) {
  const auto now = Clock::now();
  const double uptime = std::chrono::duration<double>(now - started_).count();

  std::ostringstream out;
  out << "{\"build\":\"" << json_escape(options_.build_info)
      << "\",\"uptime_seconds\":" << format_double(uptime);

  if (options_.shard_count > 0) {
    out << ",\"shard\":{\"index\":" << options_.shard_index
        << ",\"count\":" << options_.shard_count << "}";
  }

  out << ",\"snapshot\":{\"loaded\":" << (index != nullptr ? "true" : "false")
      << ",\"generation\":" << cell_.generation() << ",\"archive\":\""
      << json_escape(archive_path_) << "\"";
  const std::int64_t load_offset =
      last_load_offset_ns_.load(std::memory_order_relaxed);
  if (load_offset >= 0) {
    const double age =
        std::chrono::duration<double>(now - started_).count() -
        static_cast<double>(load_offset) / 1e9;
    out << ",\"age_seconds\":" << format_double(std::max(age, 0.0));
  }
  if (index != nullptr) {
    out << ",\"certificates\":" << index->stats().certificates
        << ",\"stale_records\":" << index->stats().stale_records
        << ",\"patch_generation\":" << index->patch_generation();
  }
  out << "}";

  out << ",\"feed\":{\"enabled\":" << (feed_enabled() ? "true" : "false");
  if (feed_enabled()) {
    if (!options_.feed_dir.empty()) {
      out << ",\"dir\":\"" << json_escape(options_.feed_dir) << "\"";
    }
    out << ",\"generation\":" << feed_generation_.load(std::memory_order_relaxed)
        << ",\"deltas_applied\":"
        << deltas_applied_.load(std::memory_order_relaxed)
        << ",\"rebuilds\":" << ingest_rebuilds_.load(std::memory_order_relaxed)
        << ",\"errors\":" << ingest_errors_.load(std::memory_order_relaxed);
    const std::int64_t horizon_days =
        feed_horizon_days_.load(std::memory_order_relaxed);
    if (horizon_days != INT64_MIN) {
      out << ",\"horizon\":" << date_json(util::Date(horizon_days));
    }
    const std::int64_t ingest_offset =
        last_ingest_offset_ns_.load(std::memory_order_relaxed);
    if (ingest_offset >= 0) {
      // Ingest lag: how stale the feed is, seconds since the last applied
      // delta.
      const double lag =
          std::chrono::duration<double>(now - started_).count() -
          static_cast<double>(ingest_offset) / 1e9;
      out << ",\"ingest_lag_seconds\":" << format_double(std::max(lag, 0.0));
    }
  }
  out << "}";

  out << ",\"windows\":{";
  bool first_endpoint = true;
  for (const auto& [endpoint, window] : windows_) {
    if (!first_endpoint) out << ",";
    first_endpoint = false;
    out << "\"" << endpoint << "\":{";
    bool first_window = true;
    for (const auto span : kWindows) {
      if (!first_window) out << ",";
      first_window = false;
      const auto summary = obs::summarize_histogram(window.latency.snapshot(span, now));
      out << "\"" << window_label(span) << "\":{\"requests\":"
          << window.requests.sum(span, now) << ",\"qps\":"
          << format_double(window.requests.rate_per_second(span, now))
          << ",\"p50_us\":" << format_double(summary.p50 * 1e6)
          << ",\"p90_us\":" << format_double(summary.p90 * 1e6)
          << ",\"p99_us\":" << format_double(summary.p99 * 1e6) << "}";
    }
    out << "}";
  }
  out << "}";

  out << ",\"slo\":{";
  for (std::size_t i = 0; i < 2; ++i) {
    const bool availability = i == 0;
    out << (i > 0 ? "," : "") << "\""
        << (availability ? "availability" : "latency") << "\":{";
    if (availability) {
      out << "\"target\":" << format_double(options_.availability_slo);
    } else {
      out << "\"target_seconds\":" << format_double(options_.latency_slo_seconds)
          << ",\"fraction\":" << format_double(options_.latency_slo_fraction);
    }
    for (const auto span : kWindows) {
      std::uint64_t total = 0;
      std::uint64_t bad = 0;
      for (const auto& [endpoint, window] : windows_) {
        total += window.requests.sum(span, now);
        bad += availability ? window.errors.sum(span, now)
                            : window.slow.sum(span, now);
      }
      const double allowed = availability ? 1.0 - options_.availability_slo
                                          : 1.0 - options_.latency_slo_fraction;
      out << ",\"burn_rate_" << window_label(span)
          << "\":" << format_double(burn_rate(bad, total, allowed));
    }
    out << "}";
  }
  out << "}";

  out << ",\"slow_traces\":[";
  const auto traces = slow_ring_.snapshot();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out << ",";
    out << obs::to_json(traces[i]);
  }
  out << "]";

  out << ",\"events\":[";
  const auto events = log_.tail(32);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    out << obs::to_jsonl(events[i]);
  }
  out << "]}\n";
  return out.str();
}

HttpResponse StaledService::handle_statusz(
    const HttpRequest& request,
    const std::shared_ptr<const StalenessIndex>& index,
    obs::RequestTrace* trace) {
  const TraceSpan serialize(trace, "serialize");
  const auto format = request.param("format");
  if (!format || *format != "html") {
    return {200, "application/json", statusz_json(index)};
  }

  const auto now = Clock::now();
  std::ostringstream out;
  out << "<!DOCTYPE html><html><head><title>staled /statusz</title></head>"
         "<body><h1>staled</h1><p>"
      << json_escape(options_.build_info) << " &middot; uptime "
      << format_double(std::chrono::duration<double>(now - started_).count())
      << "s &middot; snapshot generation " << cell_.generation() << "</p>"
      << "<h2>windows (last 1m)</h2><pre>";
  for (const auto& [endpoint, window] : windows_) {
    const auto span = std::chrono::seconds(60);
    const auto summary = obs::summarize_histogram(window.latency.snapshot(span, now));
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-11s %8.1f qps  p50 %9.1fus  p99 %9.1fus\n",
                  endpoint.c_str(), window.requests.rate_per_second(span, now),
                  summary.p50 * 1e6, summary.p99 * 1e6);
    out << line;
  }
  out << "</pre><h2>slowest recent requests</h2><pre>";
  for (const auto& slow_trace : slow_ring_.snapshot()) {
    out << json_escape(obs::to_json(slow_trace)) << "\n";
  }
  out << "</pre><h2>recent events</h2><pre>";
  for (const auto& event : log_.tail(32)) {
    out << json_escape(obs::to_human(event)) << "\n";
  }
  out << "</pre></body></html>\n";
  return {200, "text/html; charset=utf-8", out.str()};
}

obs::QuantileSummary StaledService::windowed_latency(
    const std::string& endpoint, std::chrono::seconds window) const {
  const auto it = windows_.find(endpoint);
  if (it == windows_.end()) return {};
  return obs::summarize_histogram(it->second.latency.snapshot(window));
}

double StaledService::windowed_qps(const std::string& endpoint,
                                   std::chrono::seconds window) const {
  const auto it = windows_.find(endpoint);
  if (it == windows_.end()) return 0.0;
  return it->second.requests.rate_per_second(window);
}

}  // namespace stalecert::query
