#include "stalecert/query/index.hpp"

#include <algorithm>

#include "stalecert/dns/name.hpp"
#include "stalecert/obs/observer.hpp"
#include "stalecert/query/shard.hpp"
#include "stalecert/store/archive.hpp"
#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::query {

namespace {

void sort_unique(std::vector<std::uint32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// True when `candidate` should replace `current` as the reported
/// revocation status: earlier revocation wins, ties to the lower index.
bool better_status(const RevocationStatus& candidate,
                   const RevocationStatus& current) {
  if (candidate.revocation_date != current.revocation_date)
    return candidate.revocation_date < current.revocation_date;
  return candidate.cert_index < current.cert_index;
}

}  // namespace

std::string normalize_domain(const std::string& domain) {
  return core::strip_wildcard(util::to_lower(domain));
}

std::vector<std::string> at_risk_domains(const core::CertificateCorpus& corpus,
                                         std::uint32_t cert_index,
                                         core::StaleClass cls,
                                         const std::string& trigger_domain) {
  std::vector<std::string> out;
  for (const auto& raw : corpus.at(cert_index).dns_names()) {
    const std::string name = normalize_domain(raw);
    if (cls == core::StaleClass::kKeyCompromise) {
      out.push_back(name);
      continue;
    }
    const auto e2 = dns::e2ld(name);
    if (e2 && *e2 == trigger_domain) out.push_back(name);
  }
  out.push_back(normalize_domain(trigger_domain));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StalenessIndex::StalenessIndex(core::PipelineResult result,
                               store::ArchiveMeta meta,
                               obs::PipelineObserver* observer)
    : result_(std::move(result)), meta_(std::move(meta)) {
  const obs::StageScope scope(observer, "query_index_build");

  // Denormalize the stale records in deterministic class-major order.
  for (const auto cls : core::kAllStaleClasses) {
    for (const auto& stale : result_.of(cls)) {
      StaleRecord record;
      record.cert_index = static_cast<std::uint32_t>(stale.corpus_index);
      record.cls = cls;
      record.event_date = stale.event_date;
      record.staleness = stale.staleness;
      record.trigger_domain = normalize_domain(stale.trigger_domain);
      record.reason = stale.reason;
      by_class_[static_cast<std::size_t>(cls)].push_back(
          static_cast<std::uint32_t>(records_.size()));
      records_.push_back(std::move(record));
    }
  }

  const auto& corpus = result_.corpus;
  std::vector<IntervalIndex::Entry> windows;
  windows.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const StaleRecord& record = records_[i];
    for (const auto& name : at_risk_domains(corpus, record.cert_index,
                                            record.cls,
                                            record.trigger_domain)) {
      domain_to_records_[name].push_back(i);
    }
    windows.push_back({record.staleness, i});
    stats_.by_class[static_cast<std::size_t>(record.cls)]++;
  }
  staleness_intervals_ = IntervalIndex(std::move(windows));
  for (auto& [domain, indices] : domain_to_records_) sort_unique(indices);

  // SPKI custody index + validity endpoint arrays over the whole corpus.
  validity_begins_.reserve(corpus.size());
  validity_ends_.reserve(corpus.size());
  for (std::uint32_t i = 0; i < corpus.size(); ++i) {
    const auto& cert = corpus.at(i);
    key_to_certs_[cert.subject_key().fingerprint_hex()].push_back(i);
    validity_begins_.push_back(cert.not_before().days_since_epoch());
    validity_ends_.push_back(cert.not_after().days_since_epoch());
  }
  std::sort(validity_begins_.begin(), validity_begins_.end());
  std::sort(validity_ends_.begin(), validity_ends_.end());

  // Serial join from the revocation analysis (all reasons, not only key
  // compromise), keeping the earliest revocation per serial.
  for (const auto& revoked : result_.revocations.all_revoked) {
    const auto& cert = corpus.at(revoked.corpus_index);
    RevocationStatus status;
    status.cert_index = static_cast<std::uint32_t>(revoked.corpus_index);
    status.revocation_date = revoked.event_date;
    status.reason = revoked.reason.value_or(revocation::ReasonCode::kUnspecified);
    const std::string serial = util::to_lower(cert.serial_hex());
    const auto [it, inserted] = serial_to_revocation_.emplace(serial, status);
    if (!inserted && better_status(status, it->second)) it->second = status;
  }

  stats_.certificates = corpus.size();
  stats_.stale_records = records_.size();
  stats_.distinct_keys = key_to_certs_.size();
  stats_.distinct_domains = domain_to_records_.size();
  stats_.revoked_serials = serial_to_revocation_.size();
  owned_stats_ = stats_;

  if (scope.enabled()) {
    scope.count("certificates", stats_.certificates);
    scope.count("stale_records", stats_.stale_records);
    scope.count("indexed_domains", stats_.distinct_domains);
    scope.count("indexed_keys", stats_.distinct_keys);
    scope.count("revoked_serials", stats_.revoked_serials);
  }
}

bool StalenessIndex::owns_certificate(std::uint32_t cert_index) const {
  const auto& names = result_.corpus.at(cert_index).dns_names();
  const std::string first = names.empty() ? std::string{} : names.front();
  return owns_(routing_domain(first));
}

void StalenessIndex::recompute_owned_stats() {
  if (!owns_) {
    owned_stats_ = stats_;
    return;
  }
  Stats owned;
  for (std::uint32_t i = 0; i < result_.corpus.size(); ++i) {
    if (owns_certificate(i)) owned.certificates++;
  }
  for (const StaleRecord& record : records_) {
    if (!owns_(routing_domain(record.trigger_domain))) continue;
    owned.stale_records++;
    owned.by_class[static_cast<std::size_t>(record.cls)]++;
  }
  // Keys and serials are attributed by hashing the key STRING itself: the
  // shard plan replicates every certificate onto the home shards of its
  // SPKI and serial hex (ShardPlan::shards_for_certificate), so the home
  // shard provably holds the key's full membership and counts it exactly
  // once — a member-certificate anchor would double count whenever a
  // bucket straddles shards (cross-CA serial collisions, shared keys).
  for (const auto& [key, certs] : key_to_certs_) {
    if (owns_(key)) owned.distinct_keys++;
  }
  for (const auto& [domain, records] : domain_to_records_) {
    if (owns_(routing_domain(domain))) owned.distinct_domains++;
  }
  for (const auto& [serial, status] : serial_to_revocation_) {
    if (owns_(serial)) owned.revoked_serials++;
  }
  owned_stats_ = owned;
}

void StalenessIndex::set_ownership(std::function<bool(const std::string&)> owns) {
  owns_ = std::move(owns);
  recompute_owned_stats();
}

StalenessIndex::StalenessIndex(const StalenessIndex& base, IndexPatch patch,
                               obs::PipelineObserver* observer)
    : meta_(base.meta_),
      patch_generation_(base.patch_generation_ + 1),
      records_(base.records_),
      by_class_(base.by_class_),
      key_to_certs_(base.key_to_certs_),
      domain_to_records_(base.domain_to_records_),
      serial_to_revocation_(base.serial_to_revocation_),
      validity_begins_(base.validity_begins_),
      validity_ends_(base.validity_ends_),
      stats_(base.stats_),
      owns_(base.owns_) {
  const obs::StageScope scope(observer, "query_index_patch");
  if (patch.base_certificates != base.result_.corpus.size()) {
    throw LogicError(
        "StalenessIndex::with_patch: patch extends a corpus of " +
        std::to_string(patch.base_certificates) + " certificates, base has " +
        std::to_string(base.result_.corpus.size()));
  }
  if (patch.corpus.size() < patch.base_certificates) {
    throw LogicError("StalenessIndex::with_patch: patched corpus shrank");
  }

  // Merge the pipeline result: base detector output plus the delta's new
  // records, over the extended corpus.
  result_.corpus = std::move(patch.corpus);
  result_.collect_stats = patch.collect_stats;
  result_.revocations.join_stats = patch.join_stats;
  result_.revocations.all_revoked = base.result_.revocations.all_revoked;
  result_.revocations.key_compromise = base.result_.revocations.key_compromise;
  result_.registrant_change = base.result_.registrant_change;
  result_.managed_departure = base.result_.managed_departure;
  std::vector<core::StaleCertificate> new_key_compromise;
  for (const auto& stale : patch.new_all_revoked) {
    if (stale.reason == revocation::ReasonCode::kKeyCompromise) {
      new_key_compromise.push_back(stale);
      result_.revocations.key_compromise.push_back(stale);
    }
    result_.revocations.all_revoked.push_back(stale);
  }
  result_.registrant_change.insert(result_.registrant_change.end(),
                                   patch.new_registrant_change.begin(),
                                   patch.new_registrant_change.end());
  result_.managed_departure.insert(result_.managed_departure.end(),
                                   patch.new_managed_departure.begin(),
                                   patch.new_managed_departure.end());

  const auto& corpus = result_.corpus;

  // New stale records: appended per class. New record indices are strictly
  // larger than every base index, so the per-class lists and the per-domain
  // buckets stay sorted and unique without a re-sort — only the touched
  // domain buckets change at all.
  auto append_records = [&](core::StaleClass cls,
                            const std::vector<core::StaleCertificate>& fresh) {
    for (const auto& stale : fresh) {
      StaleRecord record;
      record.cert_index = static_cast<std::uint32_t>(stale.corpus_index);
      record.cls = cls;
      record.event_date = stale.event_date;
      record.staleness = stale.staleness;
      record.trigger_domain = normalize_domain(stale.trigger_domain);
      record.reason = stale.reason;
      const auto index = static_cast<std::uint32_t>(records_.size());
      by_class_[static_cast<std::size_t>(cls)].push_back(index);
      for (const auto& name : at_risk_domains(corpus, record.cert_index, cls,
                                              record.trigger_domain)) {
        domain_to_records_[name].push_back(index);
      }
      stats_.by_class[static_cast<std::size_t>(cls)]++;
      records_.push_back(std::move(record));
    }
  };
  append_records(core::StaleClass::kKeyCompromise, new_key_compromise);
  append_records(core::StaleClass::kRegistrantChange,
                 patch.new_registrant_change);
  append_records(core::StaleClass::kManagedTlsDeparture,
                 patch.new_managed_departure);

  // The interval index is rebuilt over all windows: records are orders of
  // magnitude fewer than certificates, and the implicit-BST layout has no
  // cheap single insertion.
  std::vector<IntervalIndex::Entry> windows;
  windows.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    windows.push_back({records_[i].staleness, i});
  }
  staleness_intervals_ = IntervalIndex(std::move(windows));

  // New certificates: SPKI buckets (appended indices keep them ascending)
  // and the two validity arrays (append + re-sort).
  for (std::uint32_t i = static_cast<std::uint32_t>(patch.base_certificates);
       i < corpus.size(); ++i) {
    const auto& cert = corpus.at(i);
    key_to_certs_[cert.subject_key().fingerprint_hex()].push_back(i);
    validity_begins_.push_back(cert.not_before().days_since_epoch());
    validity_ends_.push_back(cert.not_after().days_since_epoch());
  }
  std::sort(validity_begins_.begin(), validity_begins_.end());
  std::sort(validity_ends_.begin(), validity_ends_.end());

  // Serial join merge: earliest revocation still wins per serial.
  for (const auto& revoked : patch.new_all_revoked) {
    const auto& cert = corpus.at(revoked.corpus_index);
    RevocationStatus status;
    status.cert_index = static_cast<std::uint32_t>(revoked.corpus_index);
    status.revocation_date = revoked.event_date;
    status.reason = revoked.reason.value_or(revocation::ReasonCode::kUnspecified);
    const std::string serial = util::to_lower(cert.serial_hex());
    const auto [it, inserted] = serial_to_revocation_.emplace(serial, status);
    if (!inserted && better_status(status, it->second)) it->second = status;
  }

  meta_.end = patch.new_end;
  stats_.certificates = corpus.size();
  stats_.stale_records = records_.size();
  stats_.distinct_keys = key_to_certs_.size();
  stats_.distinct_domains = domain_to_records_.size();
  stats_.revoked_serials = serial_to_revocation_.size();
  recompute_owned_stats();

  if (scope.enabled()) {
    scope.count("new_certificates",
                corpus.size() - patch.base_certificates);
    scope.count("new_stale_records", records_.size() - base.records_.size());
    scope.count("certificates", stats_.certificates);
    scope.count("stale_records", stats_.stale_records);
    scope.gauge("patch_generation", static_cast<double>(patch_generation_));
  }
}

std::shared_ptr<const StalenessIndex> StalenessIndex::with_patch(
    IndexPatch patch, obs::PipelineObserver* observer) const {
  return std::shared_ptr<const StalenessIndex>(
      new StalenessIndex(*this, std::move(patch), observer));
}

namespace {

std::shared_ptr<StalenessIndex> index_from_world(
    const store::LoadedWorld& world, obs::PipelineObserver* observer) {
  core::PipelineConfig config;
  config.revocation_cutoff = world.meta.revocation_cutoff;
  config.delegation_patterns = world.meta.delegation_patterns;
  config.managed_san_pattern = world.meta.managed_san_pattern;
  config.observer = observer;

  core::PipelineResult result =
      core::run_pipeline(world.ct_logs, world.revocations,
                         world.re_registrations(), world.adns, config);
  return std::make_shared<StalenessIndex>(std::move(result), world.meta,
                                          observer);
}

}  // namespace

std::shared_ptr<const StalenessIndex> StalenessIndex::from_archive(
    const std::string& path, obs::PipelineObserver* observer) {
  return index_from_world(store::load_world(path, observer), observer);
}

std::shared_ptr<const StalenessIndex> StalenessIndex::from_archive(
    const std::string& path, const ShardScope& scope,
    obs::PipelineObserver* observer) {
  const store::LoadedWorld world =
      apply_shard_filter(store::load_world(path, observer), scope);
  std::shared_ptr<StalenessIndex> index = index_from_world(world, observer);
  index->set_ownership(scope.owns);
  return index;
}

const StaleRecord& StalenessIndex::record(std::uint32_t index) const {
  if (index >= records_.size()) {
    throw LogicError("StalenessIndex: record index out of range");
  }
  return records_[index];
}

const std::vector<std::uint32_t>& StalenessIndex::of_class(
    core::StaleClass cls) const {
  return by_class_[static_cast<std::size_t>(cls)];
}

std::vector<std::uint32_t> StalenessIndex::certs_for_fqdn(
    const std::string& fqdn) const {
  const auto indices = result_.corpus.by_fqdn(normalize_domain(fqdn));
  std::vector<std::uint32_t> out;
  out.reserve(indices.size());
  for (const auto i : indices) out.push_back(static_cast<std::uint32_t>(i));
  sort_unique(out);
  return out;
}

std::vector<std::uint32_t> StalenessIndex::certs_for_key(
    const std::string& spki_hex) const {
  const auto it = key_to_certs_.find(util::to_lower(spki_hex));
  return it == key_to_certs_.end() ? std::vector<std::uint32_t>{} : it->second;
}

std::vector<std::uint32_t> StalenessIndex::stale_records_for(
    const std::string& domain, util::Date date) const {
  std::vector<std::uint32_t> out;
  const auto it = domain_to_records_.find(normalize_domain(domain));
  if (it == domain_to_records_.end()) return out;
  for (const auto i : it->second) {
    if (records_[i].staleness.contains(date)) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> StalenessIndex::stale_records_for_range(
    const std::string& domain, const util::DateInterval& range) const {
  std::vector<std::uint32_t> out;
  const auto it = domain_to_records_.find(normalize_domain(domain));
  if (it == domain_to_records_.end()) return out;
  for (const auto i : it->second) {
    if (records_[i].staleness.overlaps(range)) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> StalenessIndex::stale_at(
    util::Date date, std::optional<core::StaleClass> cls) const {
  std::vector<std::uint32_t> hits = staleness_intervals_.stabbing(date);
  if (cls) {
    std::erase_if(hits,
                  [&](std::uint32_t i) { return records_[i].cls != *cls; });
  }
  return hits;
}

DomainSummary StalenessIndex::stale_summary(const std::string& domain) const {
  DomainSummary summary;
  summary.domain = normalize_domain(domain);
  summary.certificates = certs_for_fqdn(summary.domain).size();
  const auto it = domain_to_records_.find(summary.domain);
  if (it == domain_to_records_.end()) return summary;
  for (const auto i : it->second) {
    const StaleRecord& record = records_[i];
    summary.stale_by_class[static_cast<std::size_t>(record.cls)]++;
    if (!summary.earliest_event || record.event_date < *summary.earliest_event) {
      summary.earliest_event = record.event_date;
    }
    if (!summary.latest_staleness_end ||
        *summary.latest_staleness_end < record.staleness.end()) {
      summary.latest_staleness_end = record.staleness.end();
    }
  }
  return summary;
}

std::optional<RevocationStatus> StalenessIndex::revocation_status(
    const std::string& serial_hex) const {
  const auto it = serial_to_revocation_.find(util::to_lower(serial_hex));
  if (it == serial_to_revocation_.end()) return std::nullopt;
  return it->second;
}

std::size_t StalenessIndex::valid_cert_count(util::Date date) const {
  const std::int64_t d = date.days_since_epoch();
  // contains(d) = begin <= d < end, so count = #(begin <= d) - #(end <= d).
  const auto begun = std::upper_bound(validity_begins_.begin(),
                                      validity_begins_.end(), d) -
                     validity_begins_.begin();
  const auto ended =
      std::upper_bound(validity_ends_.begin(), validity_ends_.end(), d) -
      validity_ends_.begin();
  return static_cast<std::size_t>(begun - ended);
}

}  // namespace stalecert::query
