#include "stalecert/query/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "stalecert/util/strings.hpp"

namespace stalecert::query {

namespace {

enum class IoResult { kOk, kClosed, kTimedOut };

IoResult send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // EAGAIN from a blocking socket means SO_SNDTIMEO expired.
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return IoResult::kTimedOut;
      }
      return IoResult::kClosed;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

}  // namespace

HttpClient::HttpClient(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(host), port_(port), timeout_(timeout) {
  connect();
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_(other.timeout_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

HttpClient::~HttpClient() { close(); }

void HttpClient::connect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw QueryError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close();
    throw QueryError("bad host address " + host_ + " (want an IPv4 literal)");
  }
  const std::string peer = host_ + ":" + std::to_string(port_);
  if (timeout_.count() <= 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw QueryError("connect " + peer + ": " + detail);
    }
    return;
  }

  // Deadline-bounded connect: non-blocking connect + poll, then restore
  // blocking mode with SO_RCVTIMEO/SO_SNDTIMEO bounding every exchange.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      const std::string detail = std::strerror(errno);
      close();
      throw QueryError("connect " + peer + ": " + detail);
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_.count()));
    if (ready == 0) {
      close();
      throw QueryTimeoutError("connect " + peer + " after " +
                              std::to_string(timeout_.count()) + "ms");
    }
    if (ready < 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw QueryError("poll " + peer + ": " + detail);
    }
    int error = 0;
    socklen_t len = sizeof error;
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      close();
      throw QueryError("connect " + peer + ": " + std::strerror(error));
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<HttpClient::Result> HttpClient::try_request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nConnection: keep-alive\r\n";
  if (!body.empty()) {
    request += "Content-Type: " + content_type +
               "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  // Timeouts THROW instead of returning nullopt: nullopt triggers the
  // reconnect-retry in request(), which is right for a closed keep-alive
  // connection but wrong for a slow server (retrying doubles the wait and
  // masks the condition the caller asked to detect).
  const auto timed_out = [&](const char* op) {
    return QueryTimeoutError(std::string(op) + " " + host_ + ":" +
                             std::to_string(port_) + " after " +
                             std::to_string(timeout_.count()) + "ms");
  };
  switch (send_all(fd_, request)) {
    case IoResult::kOk: break;
    case IoResult::kTimedOut: throw timed_out("send");
    case IoResult::kClosed: return std::nullopt;
  }

  // Read the head, then exactly Content-Length body bytes.
  std::string buffer;
  std::size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          timeout_.count() > 0) {
        throw timed_out("recv");
      }
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  const std::string head = buffer.substr(0, head_end);
  Result result;
  std::size_t content_length = 0;
  bool server_closes = false;
  const auto lines = util::split(head, '\n');
  if (lines.empty()) return std::nullopt;
  {
    // Status line: "HTTP/1.1 200 OK".
    const auto parts = util::split(std::string(util::trim(lines[0])), ' ');
    if (parts.size() < 2) return std::nullopt;
    result.status = std::atoi(parts[1].c_str());
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string line(util::trim(lines[i]));
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = util::to_lower(line.substr(0, colon));
    const std::string value(util::trim(line.substr(colon + 1)));
    if (name == "content-length") {
      content_length = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (name == "content-type") {
      result.content_type = value;
    } else if (name == "connection" && util::to_lower(value) == "close") {
      server_closes = true;
    }
  }

  // HEAD responses advertise a Content-Length but carry no body.
  if (method == "HEAD") content_length = 0;
  std::string response_body = buffer.substr(head_end + 4);
  while (response_body.size() < content_length) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          timeout_.count() > 0) {
        throw timed_out("recv");
      }
      return std::nullopt;
    }
    response_body.append(chunk, static_cast<std::size_t>(n));
  }
  result.body = response_body.substr(0, content_length);
  if (server_closes) close();
  return result;
}

HttpClient::Result HttpClient::get(const std::string& target) {
  return request("GET", target);
}

HttpClient::Result HttpClient::request(const std::string& method,
                                       const std::string& target,
                                       const std::string& body,
                                       const std::string& content_type) {
  if (fd_ < 0) connect();
  if (auto result = try_request(method, target, body, content_type)) {
    return *std::move(result);
  }
  // The server may have closed an idle keep-alive connection; retry once
  // on a fresh connection before giving up.
  connect();
  if (auto result = try_request(method, target, body, content_type)) {
    return *std::move(result);
  }
  throw QueryError(method + " " + target + " failed after reconnect");
}

HttpClient::Result http_get(const std::string& host, std::uint16_t port,
                            const std::string& target) {
  HttpClient client(host, port);
  return client.get(target);
}

}  // namespace stalecert::query
