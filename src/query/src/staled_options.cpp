#include "stalecert/query/staled_options.hpp"

#include <cstdlib>

namespace stalecert::query {

namespace {

StaledOptionsResult fail(std::string message) {
  return {std::nullopt, std::move(message)};
}

bool parse_unsigned(const std::string& text, unsigned long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::string staled_usage_line() {
  return "staled [--port N] [--bind ADDR] [--threads N]"
         " [--header-timeout-ms N] [--idle-timeout-ms N]"
         " [--log-file PATH] [--log-level debug|info|warn|error]"
         " [--feed-dir DIR] [--feed-poll-ms N] [--shard K/N]"
         " <archive.scw>";
}

StaledOptionsResult parse_staled_options(const std::vector<std::string>& args,
                                         const char* env_log_level) {
  StaledOptions options;
  options.server.port = 8080;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--port" || arg == "--bind" || arg == "--threads" ||
        arg == "--header-timeout-ms" || arg == "--idle-timeout-ms" ||
        arg == "--log-file" || arg == "--log-level" || arg == "--feed-dir" ||
        arg == "--feed-poll-ms" || arg == "--shard") {
      if (i + 1 >= args.size()) return fail(arg + " requires an argument");
      const std::string& value = args[++i];
      if (arg == "--port") {
        unsigned long port = 0;
        if (!parse_unsigned(value, &port) || port > 65535) {
          return fail("bad --port value: " + value);
        }
        options.server.port = static_cast<std::uint16_t>(port);
      } else if (arg == "--bind") {
        options.server.bind_address = value;
      } else if (arg == "--threads") {
        unsigned long threads = 0;
        if (!parse_unsigned(value, &threads) || threads == 0 ||
            threads > 1024) {
          return fail("bad --threads value: " + value);
        }
        options.server.threads = static_cast<unsigned>(threads);
      } else if (arg == "--header-timeout-ms") {
        // 0 disables the slowloris guard (matching the server contract).
        unsigned long ms = 0;
        if (!parse_unsigned(value, &ms) || ms > 3600000) {
          return fail("bad --header-timeout-ms value: " + value);
        }
        options.server.header_timeout = std::chrono::milliseconds(ms);
      } else if (arg == "--idle-timeout-ms") {
        unsigned long ms = 0;
        if (!parse_unsigned(value, &ms) || ms > 86400000) {
          return fail("bad --idle-timeout-ms value: " + value);
        }
        options.server.idle_timeout = std::chrono::milliseconds(ms);
      } else if (arg == "--log-file") {
        options.log_file = value;
      } else if (arg == "--feed-dir") {
        options.feed_dir = value;
      } else if (arg == "--feed-poll-ms") {
        unsigned long poll_ms = 0;
        if (!parse_unsigned(value, &poll_ms) || poll_ms == 0 ||
            poll_ms > 3600000) {
          return fail("bad --feed-poll-ms value: " + value);
        }
        options.feed_poll_ms = static_cast<unsigned>(poll_ms);
      } else if (arg == "--shard") {
        const auto slash = value.find('/');
        unsigned long index = 0;
        unsigned long count = 0;
        if (slash == std::string::npos ||
            !parse_unsigned(value.substr(0, slash), &index) ||
            !parse_unsigned(value.substr(slash + 1), &count) || count == 0 ||
            count > 1024 || index >= count) {
          return fail("bad --shard value (want K/N with K < N <= 1024): " +
                      value);
        }
        options.shard_index = static_cast<unsigned>(index);
        options.shard_count = static_cast<unsigned>(count);
      } else {
        const auto level = obs::parse_log_level(value);
        if (!level) return fail("bad --log-level value: " + value);
        options.log_level = *level;
        options.log_level_from_flag = true;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("unknown flag " + arg);
    } else if (options.archive_path.empty()) {
      options.archive_path = arg;
    } else {
      return fail("multiple archive paths given");
    }
  }
  if (options.archive_path.empty()) return fail("missing archive path");

  if (!options.log_level_from_flag) {
    options.log_level =
        obs::log_level_from_env(env_log_level, obs::LogLevel::kInfo);
  }
  return {std::move(options), ""};
}

}  // namespace stalecert::query
