#include "stalecert/query/interval_index.hpp"

#include <algorithm>

namespace stalecert::query {

namespace {

bool entry_less(const IntervalIndex::Entry& a, const IntervalIndex::Entry& b) {
  if (a.interval.begin() != b.interval.begin())
    return a.interval.begin() < b.interval.begin();
  if (a.interval.end() != b.interval.end())
    return a.interval.end() < b.interval.end();
  return a.payload < b.payload;
}

}  // namespace

IntervalIndex::IntervalIndex(std::vector<Entry> entries) {
  entries_ = std::move(entries);
  std::erase_if(entries_, [](const Entry& e) { return e.interval.empty(); });
  std::sort(entries_.begin(), entries_.end(), entry_less);

  // max_end_[mid of [lo, hi)] = max interval end within [lo, hi). Computed
  // bottom-up over the same implicit tree the queries descend.
  max_end_.resize(entries_.size());
  struct Frame {
    std::size_t lo, hi;
  };
  // Recursive lambda without std::function to keep the build allocation-light.
  auto fill = [this](auto&& self, std::size_t lo, std::size_t hi) -> util::Date {
    const std::size_t mid = lo + (hi - lo) / 2;
    util::Date max = entries_[mid].interval.end();
    if (lo < mid) max = std::max(max, self(self, lo, mid));
    if (mid + 1 < hi) max = std::max(max, self(self, mid + 1, hi));
    max_end_[mid] = max;
    return max;
  };
  if (!entries_.empty()) fill(fill, 0, entries_.size());
}

void IntervalIndex::stab(std::size_t lo, std::size_t hi, util::Date date,
                         std::vector<std::uint32_t>* out,
                         std::size_t* count) const {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  // Subtree holds nothing ending after `date` -> no interval contains it
  // (half-open: containment needs end > date).
  if (!(date < max_end_[mid])) return;
  stab(lo, mid, date, out, count);
  const Entry& e = entries_[mid];
  if (e.interval.contains(date)) {
    if (out != nullptr) out->push_back(e.payload);
    if (count != nullptr) ++*count;
  }
  // Everything right of mid begins at or after e.begin; once begins exceed
  // `date` no right-subtree interval can contain it.
  if (!(date < e.interval.begin())) stab(mid + 1, hi, date, out, count);
}

std::vector<std::uint32_t> IntervalIndex::stabbing(util::Date date) const {
  std::vector<std::uint32_t> out;
  stab(0, entries_.size(), date, &out, nullptr);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t IntervalIndex::stabbing_count(util::Date date) const {
  std::size_t count = 0;
  stab(0, entries_.size(), date, nullptr, &count);
  return count;
}

void IntervalIndex::overlap(std::size_t lo, std::size_t hi,
                            const util::DateInterval& range,
                            std::vector<std::uint32_t>* out) const {
  if (lo >= hi) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  // Overlap needs an entry end strictly after range.begin.
  if (!(range.begin() < max_end_[mid])) return;
  overlap(lo, mid, range, out);
  const Entry& e = entries_[mid];
  if (e.interval.overlaps(range)) out->push_back(e.payload);
  // Right subtree begins >= e.begin; overlap needs begin < range.end.
  if (e.interval.begin() < range.end()) overlap(mid + 1, hi, range, out);
}

std::vector<std::uint32_t> IntervalIndex::overlapping(
    const util::DateInterval& range) const {
  std::vector<std::uint32_t> out;
  if (range.empty()) return out;
  overlap(0, entries_.size(), range, &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace stalecert::query
