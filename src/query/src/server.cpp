#include "stalecert/query/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace stalecert::query {

namespace {

/// Sends the whole buffer, tolerating partial writes; MSG_NOSIGNAL keeps a
/// client that hung up from killing the process with SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) throw QueryError("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw QueryError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw QueryError("bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw QueryError("bind " + options_.bind_address + ":" +
                     std::to_string(options_.port) + ": " + detail);
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw QueryError("listen: " + detail);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stopping_.store(false);
  running_.store(true);
  const unsigned threads = options_.threads == 0 ? 1 : options_.threads;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::worker_loop() {
  // accept(2) on a shared listening socket is thread-safe; the kernel hands
  // each connection to exactly one blocked worker.
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // EBADF / EINVAL after stop() shut the listener down: drain and exit.
      break;
    }
    serve_connection(client);
  }
}

void HttpServer::track_connection(int client_fd) {
  const util::MutexLock lock(connections_mutex_);
  connections_.insert(client_fd);
}

void HttpServer::untrack_and_close(int client_fd) {
  // Erase under the lock BEFORE closing: stop() shuts tracked fds down under
  // the same lock, so it can never touch a number the kernel has reused.
  const util::MutexLock lock(connections_mutex_);
  connections_.erase(client_fd);
  ::close(client_fd);
}

void HttpServer::serve_connection(int client_fd) {
  track_connection(client_fd);
  std::string buffer;
  bool keep_open = true;
  while (keep_open && !stopping_.load(std::memory_order_acquire)) {
    // Read until the end of the request head; the body follows separately.
    std::size_t head_end = buffer.find("\r\n\r\n");
    while (head_end == std::string::npos &&
           buffer.size() <= options_.max_request_bytes) {
      char chunk[4096];
      const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        untrack_and_close(client_fd);
        return;  // client hung up (or error) between requests
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      head_end = buffer.find("\r\n\r\n");
    }
    // Too large whether the terminator never came or the head that did
    // arrive (possibly in a single read) blows the limit.
    if (head_end == std::string::npos ||
        head_end + 4 > options_.max_request_bytes) {
      send_all(client_fd,
               serialize_response({400, "text/plain", "request too large\n"},
                                  /*keep_alive=*/false));
      break;
    }

    const auto parse_start = std::chrono::steady_clock::now();
    auto request = parse_request(buffer.substr(0, head_end + 4));
    if (request) {
      request->parse_duration = std::chrono::steady_clock::now() - parse_start;
    }
    buffer.erase(0, head_end + 4);
    if (!request) {
      send_all(client_fd,
               serialize_response({400, "text/plain", "malformed request\n"},
                                  /*keep_alive=*/false));
      break;
    }

    // Drain the body (Content-Length framing only) regardless of whether
    // the method is served: leftover body bytes would otherwise be parsed
    // as the next request head on this keep-alive connection.
    std::size_t content_length = 0;
    if (const auto it = request->headers.find("content-length");
        it != request->headers.end()) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
      if (end == it->second.c_str() || *end != '\0' ||
          parsed > options_.max_request_bytes) {
        send_all(client_fd,
                 serialize_response(
                     {400, "text/plain", "bad or oversized content-length\n"},
                     /*keep_alive=*/false));
        break;
      }
      content_length = static_cast<std::size_t>(parsed);
    }
    bool body_ok = true;
    while (buffer.size() < content_length) {
      char chunk[4096];
      const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        body_ok = false;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (!body_ok) {
      untrack_and_close(client_fd);
      return;  // client hung up mid-body
    }
    request->body = buffer.substr(0, content_length);
    buffer.erase(0, content_length);

    HttpResponse response;
    if (request->method != "GET" && request->method != "HEAD" &&
        request->method != "POST") {
      response = {405, "text/plain", "method not allowed\n"};
    } else {
      try {
        response = handler_(*request);
      } catch (const std::exception& e) {
        response = {500, "text/plain", std::string("internal error: ") +
                                           e.what() + "\n"};
      }
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);

    keep_open = request->keep_alive();
    const auto write_start = std::chrono::steady_clock::now();
    const bool sent =
        send_all(client_fd, serialize_response(response, keep_open,
                                               request->method == "HEAD"));
    if (request_hook_) {
      request_hook_(*request, response,
                    std::chrono::steady_clock::now() - write_start);
    }
    if (!sent) break;
  }
  untrack_and_close(client_fd);
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake every worker blocked in accept(); in-flight connections finish
  // their current request before the loop re-checks stopping_.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    // Workers parked in recv() between keep-alive requests see EOF; SHUT_RD
    // leaves the write side alone so an in-flight response still goes out.
    const util::MutexLock lock(connections_mutex_);
    for (const int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace stalecert::query
