#include "stalecert/cdn/provider.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"

namespace stalecert::cdn {

std::string to_string(DelegationKind kind) {
  switch (kind) {
    case DelegationKind::kCname: return "CNAME";
    case DelegationKind::kNs: return "NS";
  }
  return "?";
}

ManagedTlsProvider::ManagedTlsProvider(ProviderConfig config,
                                       ca::CertificateAuthority* pack_ca,
                                       ca::CertificateAuthority* direct_ca,
                                       dns::DnsDatabase* dnsdb, std::uint64_t seed)
    : config_(std::move(config)),
      pack_ca_(pack_ca),
      direct_ca_(direct_ca),
      dnsdb_(dnsdb),
      rng_(seed) {
  if (!pack_ca_ || !direct_ca_ || !dnsdb_) {
    throw LogicError("ManagedTlsProvider: null dependency");
  }
}

bool ManagedTlsProvider::per_domain_mode(util::Date date) const {
  if (config_.cruiseliner_capacity == 0) return true;
  return config_.per_domain_switch && date >= *config_.per_domain_switch;
}

void ManagedTlsProvider::record_custody(const std::string& domain,
                                        const crypto::KeyPair& key, util::Date date) {
  // Under Keyless SSL the provider only ever signs via the customer's key
  // server; there is nothing to retain when the customer leaves.
  if (config_.keyless_ssl) return;
  custody_.push_back({domain, key, date});
  held_key_ids_.insert(key.fingerprint_hex());
}

void ManagedTlsProvider::apply_delegation(const std::string& domain,
                                          DelegationKind kind) {
  switch (kind) {
    case DelegationKind::kCname:
      dnsdb_->set_cname(domain, domain + "." + config_.cname_suffix);
      dnsdb_->set_a(domain + "." + config_.cname_suffix, {"198.51.100.7"});
      break;
    case DelegationKind::kNs:
      dnsdb_->set_cname(domain, std::nullopt);
      dnsdb_->set_ns(domain, assigned_nameservers(domain));
      dnsdb_->set_a(domain, {"198.51.100.8"});
      break;
  }
}

std::vector<std::string> ManagedTlsProvider::assigned_nameservers(
    const std::string& domain) const {
  // Deterministic pair of vanity nameservers per domain.
  const auto digest = crypto::Sha256::hash("ns-assign/" + config_.name + "/" + domain);
  const char first = static_cast<char>('a' + digest[0] % 26);
  const char second = static_cast<char>('a' + digest[1] % 26);
  return {std::string(1, first) + "1." + config_.ns_suffix,
          std::string(1, second) + "2." + config_.ns_suffix};
}

x509::Certificate ManagedTlsProvider::issue_shell(Shell& shell, util::Date date) {
  std::vector<std::string> sans;
  sans.push_back(shell.sni_label);
  for (const auto& d : shell.domains) {
    sans.push_back(d);
    sans.push_back("*." + d);
  }
  ca::IssuanceRequest request;
  request.domains = std::move(sans);
  request.subscriber_key = shell.key;
  request.account = config_.actor;
  request.date = date;
  request.requested_days = config_.managed_cert_days;
  const x509::Certificate cert = pack_ca_->issue_unchecked(request);
  shell.current = cert;
  for (const auto& d : shell.domains) record_custody(d, shell.key, date);
  return cert;
}

x509::Certificate ManagedTlsProvider::issue_per_domain(const std::string& domain,
                                                       util::Date date) {
  const crypto::KeyPair key = crypto::KeyPair::derive(
      config_.name + "/per-domain/" + domain + "/" + date.to_string(),
      crypto::KeyAlgorithm::kEcdsaP256);
  // Per-domain managed certificates still carry the provider's sni marker
  // (all Cloudflare-managed certificates include a *.cloudflaressl.com
  // SAN), which is what makes them attributable in the CT corpus.
  const auto digest = crypto::Sha256::hash("sni/" + config_.name + "/" + domain);
  const std::string sni_label =
      "sni" + std::to_string(100000 + crypto::digest_prefix64(digest) % 900000) +
      config_.managed_san_pattern.substr(config_.managed_san_pattern.find('.'));
  ca::IssuanceRequest request;
  request.domains = {sni_label, domain, "*." + domain};
  request.subscriber_key = key;
  request.account = config_.actor;
  request.date = date;
  request.requested_days = config_.managed_cert_days;
  const x509::Certificate cert = direct_ca_->issue_unchecked(request);
  per_domain_certs_[domain] = cert;
  record_custody(domain, key, date);
  return cert;
}

std::vector<x509::Certificate> ManagedTlsProvider::enroll(const std::string& domain,
                                                          DelegationKind kind,
                                                          util::Date date) {
  if (is_enrolled(domain)) throw LogicError("enroll: '" + domain + "' already enrolled");
  apply_delegation(domain, kind);
  active_enrollment_[domain] = history_.size();
  history_.push_back({domain, kind, date, std::nullopt});

  std::vector<x509::Certificate> issued;
  if (per_domain_mode(date)) {
    issued.push_back(issue_per_domain(domain, date));
    return issued;
  }

  // Cruise-liner packing: find a shell with room, else open a new one.
  auto it = std::find_if(shells_.begin(), shells_.end(), [&](const Shell& s) {
    return s.domains.size() < config_.cruiseliner_capacity;
  });
  if (it == shells_.end()) {
    Shell shell;
    shell.sni_label = "sni" + std::to_string(100000 + rng_.below(900000)) +
                      "." + config_.managed_san_pattern.substr(
                                config_.managed_san_pattern.find('.') + 1);
    shell.key = crypto::KeyPair::derive(
        config_.name + "/shell/" + shell.sni_label, crypto::KeyAlgorithm::kEcdsaP256);
    shells_.push_back(std::move(shell));
    it = std::prev(shells_.end());
  }
  it->domains.insert(domain);
  domain_shell_[domain] = static_cast<std::size_t>(std::distance(shells_.begin(), it));
  issued.push_back(issue_shell(*it, date));
  return issued;
}

std::vector<x509::Certificate> ManagedTlsProvider::depart(const std::string& domain,
                                                          util::Date date) {
  const auto active = active_enrollment_.find(domain);
  if (active == active_enrollment_.end()) {
    throw LogicError("depart: '" + domain + "' not enrolled");
  }
  history_[active->second].end = date;
  active_enrollment_.erase(active);

  // Replace delegation with generic new infrastructure (self-hosting or a
  // competitor): fresh NS + A records, no CNAME to this provider.
  dnsdb_->set_cname(domain, std::nullopt);
  dnsdb_->set_ns(domain, {"ns1.newhost-" + std::to_string(rng_.below(1000)) + ".example",
                          "ns2.newhost.example"});
  dnsdb_->set_a(domain, {"203.0.113." + std::to_string(1 + rng_.below(250))});

  std::vector<x509::Certificate> issued;
  const auto shell_it = domain_shell_.find(domain);
  if (shell_it != domain_shell_.end()) {
    Shell& shell = shells_[shell_it->second];
    shell.domains.erase(domain);
    domain_shell_.erase(shell_it);
    // Cloudflare re-issues the cruise-liner without the departed customer;
    // the *old* certificate (still covering the domain) remains valid and
    // key-held — the staleness the paper measures. After the per-domain
    // switch, shells are no longer re-issued (they dissolve at renewal).
    if (!shell.domains.empty() && !per_domain_mode(date)) {
      issued.push_back(issue_shell(shell, date));
    }
  }
  per_domain_certs_.erase(domain);
  return issued;
}

std::vector<x509::Certificate> ManagedTlsProvider::renew_expiring(
    util::Date date, std::int64_t horizon_days) {
  std::vector<x509::Certificate> issued;
  for (auto& shell : shells_) {
    if (shell.domains.empty() || !shell.current) continue;
    if (shell.current->not_after() - date > horizon_days) continue;
    if (per_domain_mode(date)) {
      // The provider has switched to per-domain certificates: dissolve the
      // cruise-liner, migrating each customer to its own certificate.
      for (const auto& domain : shell.domains) {
        issued.push_back(issue_per_domain(domain, date));
        domain_shell_.erase(domain);
      }
      shell.domains.clear();
      shell.current.reset();
    } else {
      issued.push_back(issue_shell(shell, date));
    }
  }
  for (auto& [domain, cert] : per_domain_certs_) {
    if (cert.not_after() - date <= horizon_days) {
      issued.push_back(issue_per_domain(domain, date));
    }
  }
  return issued;
}

bool ManagedTlsProvider::is_enrolled(const std::string& domain) const {
  return active_enrollment_.contains(domain);
}

std::size_t ManagedTlsProvider::enrolled_count() const {
  return active_enrollment_.size();
}

bool ManagedTlsProvider::holds_key(const x509::Certificate& cert) const {
  return held_key_ids_.contains(cert.subject_key().fingerprint_hex());
}

}  // namespace stalecert::cdn
