#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stalecert/ca/authority.hpp"
#include "stalecert/dns/zone.hpp"
#include "stalecert/util/rng.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::cdn {

/// How a customer delegates traffic to the provider (§2.3 / Figure 3):
/// a CNAME to the provider's edge, or full NS delegation.
enum class DelegationKind : std::uint8_t { kCname, kNs };

std::string to_string(DelegationKind kind);

/// Static description of a managed-TLS provider.
struct ProviderConfig {
  std::string name;                 // "Cloudflare"
  std::string ns_suffix;            // "ns.cloudflare.com" -> ns1.ns..., ns2.ns...
  std::string cname_suffix;         // "cdn.cloudflare.com"
  /// SAN label pattern of managed certificates (e.g. "sni*.cloudflaressl.com").
  /// Empty for providers whose managed certs are indistinguishable from
  /// self-managed ones (they use DigiCert / Let's Encrypt).
  std::string managed_san_pattern;
  /// >0: pack up to this many customers into one "cruise-liner"
  /// certificate (Cloudflare pre-2019). 0: one certificate per customer.
  std::size_t cruiseliner_capacity = 0;
  /// Date after which the provider switches from cruise-liners to
  /// per-domain certificates from its own CA (Cloudflare mid-2019).
  std::optional<util::Date> per_domain_switch;
  std::int64_t managed_cert_days = 365;
  ca::ActorId actor = 0;  // the provider's identity in validation checks
  /// Keyless-SSL mode (§7.2 mitigation, Cloudflare's "Keyless SSL" /
  /// keyless-CDN conclaves): the customer's key server holds the private
  /// key; the provider terminates TLS by remote signing and retains NO
  /// usable key material after departure. Managed certificates still
  /// exist (and still look stale to a CT-based detector), but the
  /// third-party impersonation capability is gone.
  bool keyless_ssl = false;
};

/// A key custody fact: the provider holds the private key for a
/// certificate covering `domain` during [acquired, forever). Custody is
/// never relinquished — that is precisely the staleness hazard.
struct KeyCustody {
  std::string domain;
  crypto::KeyPair key;
  util::Date acquired;
};

/// Ground-truth enrollment span for a customer domain.
struct Enrollment {
  std::string domain;
  DelegationKind kind = DelegationKind::kCname;
  util::Date start;
  std::optional<util::Date> end;  // departure date, if departed
};

/// A managed-TLS provider (CDN / shared web host). Owns DNS delegation
/// records for enrolled customers, obtains certificates on their behalf
/// (controlling the private keys), and — crucially — retains those keys
/// after a customer departs.
class ManagedTlsProvider {
 public:
  ManagedTlsProvider(ProviderConfig config, ca::CertificateAuthority* pack_ca,
                     ca::CertificateAuthority* direct_ca, dns::DnsDatabase* dnsdb,
                     std::uint64_t seed);

  [[nodiscard]] const ProviderConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  /// Enrolls a customer: delegates DNS and issues/extends managed certs.
  /// Returns the certificates newly issued on behalf of the customer.
  std::vector<x509::Certificate> enroll(const std::string& domain,
                                        DelegationKind kind, util::Date date);

  /// Customer departs to new infrastructure: the delegation records are
  /// replaced, the cruise-liner (if any) is re-issued without the domain —
  /// but the provider keeps every key it ever held. Returns the newly
  /// issued replacement certificates (the SAN-shuffled cruise-liner).
  std::vector<x509::Certificate> depart(const std::string& domain, util::Date date);

  /// Periodic renewal pass: re-issues managed certificates that expire
  /// within `horizon_days`. Mirrors unattended automatic reissuance (§7.1).
  std::vector<x509::Certificate> renew_expiring(util::Date date,
                                                std::int64_t horizon_days = 30);

  [[nodiscard]] bool is_enrolled(const std::string& domain) const;
  [[nodiscard]] std::size_t enrolled_count() const;
  [[nodiscard]] const std::vector<Enrollment>& enrollment_history() const {
    return history_;
  }
  /// All custody facts (the provider-side key ledger).
  [[nodiscard]] const std::vector<KeyCustody>& custody_ledger() const {
    return custody_;
  }
  /// Does the provider hold the private key of this certificate?
  [[nodiscard]] bool holds_key(const x509::Certificate& cert) const;

  /// Nameserver host names assigned to a domain under NS delegation.
  [[nodiscard]] std::vector<std::string> assigned_nameservers(
      const std::string& domain) const;

 private:
  struct Shell {  // one cruise-liner certificate group
    std::string sni_label;            // sni12345.cloudflaressl.com
    crypto::KeyPair key;
    std::set<std::string> domains;
    std::optional<x509::Certificate> current;
  };

  [[nodiscard]] bool per_domain_mode(util::Date date) const;
  x509::Certificate issue_shell(Shell& shell, util::Date date);
  x509::Certificate issue_per_domain(const std::string& domain, util::Date date);
  void record_custody(const std::string& domain, const crypto::KeyPair& key,
                      util::Date date);
  void apply_delegation(const std::string& domain, DelegationKind kind);

  ProviderConfig config_;
  ca::CertificateAuthority* pack_ca_;
  ca::CertificateAuthority* direct_ca_;
  dns::DnsDatabase* dnsdb_;
  util::Rng rng_;
  std::vector<Shell> shells_;
  std::map<std::string, std::size_t> domain_shell_;   // domain -> shell index
  std::map<std::string, x509::Certificate> per_domain_certs_;
  std::map<std::string, std::size_t> active_enrollment_;  // domain -> history idx
  std::vector<Enrollment> history_;
  std::vector<KeyCustody> custody_;
  std::set<std::string> held_key_ids_;  // hex fingerprints for holds_key()
};

}  // namespace stalecert::cdn
