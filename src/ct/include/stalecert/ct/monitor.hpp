#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "stalecert/ct/log.hpp"

namespace stalecert::ct {

/// A verifying, incremental CT monitor for one log: fetches new entries in
/// batches, checks every new signed tree head for append-only consistency
/// against the previously verified one, spot-checks entry inclusion, and
/// maintains a per-domain watchlist (the mechanism a domain owner would
/// use to spot certificates they did not request — though, as the paper
/// notes, CT cannot reveal *stale* certificates, which were legitimate at
/// issuance).
class LogMonitor {
 public:
  explicit LogMonitor(const CtLog* log, std::uint64_t batch_size = 256);

  /// Adds a domain (exact match or parent of logged names) to watch.
  void watch(const std::string& domain);

  struct SyncResult {
    std::uint64_t new_entries = 0;
    bool consistency_verified = false;  // old STH -> new STH proof checked
    std::uint64_t inclusion_checks = 0;
    std::uint64_t inclusion_failures = 0;
    /// Watched-domain hits among the new entries.
    std::vector<LogEntry> watch_hits;
  };

  /// Catches up with the log. Throws LogicError if the log ever presents
  /// an inconsistent tree (equivocation).
  SyncResult sync(util::Date now);

  [[nodiscard]] std::uint64_t verified_size() const { return verified_size_; }
  [[nodiscard]] const std::optional<SignedTreeHead>& last_sth() const {
    return last_sth_;
  }
  /// All watch hits observed since construction.
  [[nodiscard]] const std::vector<LogEntry>& all_watch_hits() const {
    return all_hits_;
  }

 private:
  [[nodiscard]] bool matches_watchlist(const x509::Certificate& cert) const;

  const CtLog* log_;
  std::uint64_t batch_size_;
  std::uint64_t verified_size_ = 0;
  std::optional<SignedTreeHead> last_sth_;
  std::set<std::string> watchlist_;
  std::vector<LogEntry> all_hits_;
};

}  // namespace stalecert::ct
