#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stalecert/ct/log.hpp"

namespace stalecert::obs {
class PipelineObserver;
}

namespace stalecert::ct {

/// Options for the monitor-side certificate collection (Section 4 of the
/// paper): deduplicate precertificates against issued certificates on their
/// non-CT components, and drop anomalous FQDNs with more than
/// `max_certs_per_fqdn` certificates (test domains like
/// flowers-to-the-world.com).
struct CollectOptions {
  bool chrome_or_apple_only = true;
  std::uint64_t max_certs_per_fqdn = 3000;
};

struct CollectStats {
  std::uint64_t raw_entries = 0;
  std::uint64_t after_dedup = 0;
  std::uint64_t dropped_anomalous_fqdns = 0;
  std::uint64_t dropped_certificates = 0;
};

/// A fleet of CT logs plus the monitor logic that aggregates them into the
/// deduplicated certificate corpus the detectors consume.
class LogSet {
 public:
  /// Adds a log and returns a stable reference index.
  std::size_t add_log(CtLog log);

  [[nodiscard]] std::size_t log_count() const { return logs_.size(); }
  [[nodiscard]] CtLog& log(std::size_t i);
  [[nodiscard]] const CtLog& log(std::size_t i) const;
  [[nodiscard]] std::vector<CtLog>& logs() { return logs_; }
  [[nodiscard]] const std::vector<CtLog>& logs() const { return logs_; }

  /// Submits to every accepting log; returns the SCTs obtained. CAs are
  /// expected to embed the returned log ids in the final certificate.
  std::vector<SignedCertificateTimestamp> submit(const x509::Certificate& cert,
                                                 util::Date now);

  /// Monitor-side aggregate download: all entries across logs, precert/cert
  /// deduplicated, anomalous FQDNs removed. When `observer` is non-null the
  /// stage reports its funnel (raw entries -> deduped -> anomaly-filtered)
  /// and wall-clock under the stage name "ct_collect".
  [[nodiscard]] std::vector<x509::Certificate> collect(
      const CollectOptions& options = {}, CollectStats* stats = nullptr,
      obs::PipelineObserver* observer = nullptr) const;

  /// Total number of raw entries across all logs.
  [[nodiscard]] std::uint64_t total_entries() const;

 private:
  std::vector<CtLog> logs_;
};

/// Builds the 2013-2023 log ecosystem used by the benchmarks: a handful of
/// unsharded logs plus yearly temporal shards per operator, mirroring the
/// 117-log corpus described in the paper at reduced cardinality.
LogSet make_historical_log_ecosystem();

}  // namespace stalecert::ct
