#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stalecert/crypto/sha256.hpp"

namespace stalecert::ct {

using crypto::Digest;

/// RFC 6962 Merkle hashes: leaves are domain-separated with 0x00, interior
/// nodes with 0x01, and the empty tree hashes to SHA-256 of the empty
/// string.
Digest leaf_hash(std::span<const std::uint8_t> entry);
Digest node_hash(const Digest& left, const Digest& right);
Digest empty_tree_hash();

/// An append-only RFC 6962 Merkle tree over opaque leaf blobs. Stores all
/// node levels so root/inclusion/consistency queries at any historical tree
/// size are O(log n) without rebuilding.
class MerkleTree {
 public:
  /// Appends a leaf; returns its index.
  std::uint64_t append(std::span<const std::uint8_t> entry);

  [[nodiscard]] std::uint64_t size() const { return leaves_.size(); }

  /// Merkle Tree Hash of the first `tree_size` leaves (tree_size <= size()).
  [[nodiscard]] Digest root_at(std::uint64_t tree_size) const;
  [[nodiscard]] Digest root() const { return root_at(size()); }

  /// RFC 6962 §2.1.1 audit path for leaf `index` in the tree of
  /// `tree_size` leaves.
  [[nodiscard]] std::vector<Digest> inclusion_proof(std::uint64_t index,
                                                    std::uint64_t tree_size) const;

  /// RFC 6962 §2.1.2 consistency proof between two tree sizes.
  [[nodiscard]] std::vector<Digest> consistency_proof(std::uint64_t old_size,
                                                      std::uint64_t new_size) const;

  [[nodiscard]] const Digest& leaf(std::uint64_t index) const;

 private:
  [[nodiscard]] Digest subtree_root(std::uint64_t begin, std::uint64_t end) const;
  void subtree_inclusion(std::uint64_t index, std::uint64_t begin, std::uint64_t end,
                         std::vector<Digest>& path) const;
  void subtree_consistency(std::uint64_t old_size, std::uint64_t begin,
                           std::uint64_t end, bool old_is_complete,
                           std::vector<Digest>& proof) const;

  std::vector<Digest> leaves_;
};

/// Verifies an RFC 6962 inclusion proof.
bool verify_inclusion(const Digest& leaf, std::uint64_t index,
                      std::uint64_t tree_size, std::span<const Digest> proof,
                      const Digest& root);

/// Verifies an RFC 6962 consistency proof between two signed tree heads.
bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size,
                        const Digest& old_root, const Digest& new_root,
                        std::span<const Digest> proof);

}  // namespace stalecert::ct
