#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/ct/merkle.hpp"
#include "stalecert/util/interval.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::ct {

/// A signed certificate timestamp handed back to the submitter.
struct SignedCertificateTimestamp {
  std::uint64_t log_id = 0;
  std::uint64_t index = 0;
  util::Date timestamp;
};

/// A signed tree head.
struct SignedTreeHead {
  std::uint64_t log_id = 0;
  std::uint64_t tree_size = 0;
  Digest root_hash{};
  util::Date timestamp;
};

/// One log entry as a monitor would download it.
struct LogEntry {
  std::uint64_t index = 0;
  util::Date timestamp;
  x509::Certificate certificate;
};

/// Which root programs trust a log. The paper collects from logs trusted
/// by Google Chrome or Apple "at some point in time".
struct TrustFlags {
  bool chrome = false;
  bool apple = false;
};

/// An RFC 6962-style certificate transparency log. Temporal shards (the
/// post-2020 deployment model) only accept certificates whose expiry falls
/// in the shard window.
class CtLog {
 public:
  CtLog(std::uint64_t id, std::string name, std::string log_operator,
        TrustFlags trust,
        std::optional<util::DateInterval> expiry_shard = std::nullopt);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& log_operator() const { return operator_; }
  [[nodiscard]] const TrustFlags& trust() const { return trust_; }
  [[nodiscard]] const std::optional<util::DateInterval>& expiry_shard() const {
    return shard_;
  }

  /// True if the log would accept a certificate (shard window check).
  [[nodiscard]] bool accepts(const x509::Certificate& cert) const;

  /// Appends a certificate; returns its SCT, or nullopt if rejected.
  std::optional<SignedCertificateTimestamp> submit(const x509::Certificate& cert,
                                                   util::Date now);

  /// Re-appends an archived entry (stalecert::store restore path): no shard
  /// check — the entry was accepted when originally submitted — and the
  /// original timestamp is preserved, so the rebuilt log is bit-identical
  /// to the one that was saved. Throws LogicError if `index` is not the
  /// next index (archives store entries in order).
  void restore_entry(std::uint64_t index, util::Date timestamp,
                     const x509::Certificate& cert);

  [[nodiscard]] std::uint64_t size() const { return tree_.size(); }
  [[nodiscard]] SignedTreeHead sth(util::Date now) const;
  [[nodiscard]] SignedTreeHead sth_at(std::uint64_t tree_size, util::Date now) const;

  [[nodiscard]] std::vector<Digest> inclusion_proof(std::uint64_t index,
                                                    std::uint64_t tree_size) const {
    return tree_.inclusion_proof(index, tree_size);
  }
  [[nodiscard]] std::vector<Digest> consistency_proof(std::uint64_t old_size,
                                                      std::uint64_t new_size) const {
    return tree_.consistency_proof(old_size, new_size);
  }
  [[nodiscard]] Digest leaf_hash_at(std::uint64_t index) const {
    return tree_.leaf(index);
  }

  /// Range download as a monitor would perform ([begin, end) clamped).
  [[nodiscard]] std::vector<LogEntry> get_entries(std::uint64_t begin,
                                                  std::uint64_t end) const;
  [[nodiscard]] const std::vector<LogEntry>& entries() const { return entries_; }

 private:
  std::uint64_t id_;
  std::string name_;
  std::string operator_;
  TrustFlags trust_;
  std::optional<util::DateInterval> shard_;
  MerkleTree tree_;
  std::vector<LogEntry> entries_;
};

}  // namespace stalecert::ct
