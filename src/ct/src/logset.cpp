#include "stalecert/ct/logset.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "stalecert/obs/observer.hpp"
#include "stalecert/util/error.hpp"

namespace stalecert::ct {
namespace {

struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      out = out << 8 | d[i];
    }
    return out;
  }
};

}  // namespace

std::size_t LogSet::add_log(CtLog log) {
  logs_.push_back(std::move(log));
  return logs_.size() - 1;
}

CtLog& LogSet::log(std::size_t i) {
  if (i >= logs_.size()) throw LogicError("LogSet: log index out of range");
  return logs_[i];
}

const CtLog& LogSet::log(std::size_t i) const {
  if (i >= logs_.size()) throw LogicError("LogSet: log index out of range");
  return logs_[i];
}

std::vector<SignedCertificateTimestamp> LogSet::submit(const x509::Certificate& cert,
                                                       util::Date now) {
  std::vector<SignedCertificateTimestamp> scts;
  for (auto& log : logs_) {
    if (auto sct = log.submit(cert, now)) scts.push_back(*sct);
  }
  return scts;
}

std::uint64_t LogSet::total_entries() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log.size();
  return total;
}

std::vector<x509::Certificate> LogSet::collect(const CollectOptions& options,
                                               CollectStats* stats,
                                               obs::PipelineObserver* observer) const {
  const obs::StageScope scope(observer, "ct_collect");
  CollectStats local;
  // Deduplicate on the non-CT fingerprint. When both a precertificate and
  // the corresponding issued certificate are logged, keep the issued one
  // (it carries the SCT list).
  std::unordered_map<Digest, x509::Certificate, DigestHash> dedup;
  for (const auto& log : logs_) {
    if (options.chrome_or_apple_only && !log.trust().chrome && !log.trust().apple) {
      continue;
    }
    for (const auto& entry : log.entries()) {
      ++local.raw_entries;
      const Digest key = entry.certificate.dedup_fingerprint();
      auto [it, inserted] = dedup.try_emplace(key, entry.certificate);
      if (!inserted && it->second.is_precertificate() &&
          !entry.certificate.is_precertificate()) {
        it->second = entry.certificate;
      }
    }
  }
  local.after_dedup = dedup.size();

  // Count certificates per FQDN and mark anomalous names.
  std::unordered_map<std::string, std::uint64_t> fqdn_counts;
  for (const auto& [key, cert] : dedup) {
    for (const auto& name : cert.dns_names()) ++fqdn_counts[name];
  }
  std::unordered_set<std::string> anomalous;
  for (const auto& [name, count] : fqdn_counts) {
    if (count > options.max_certs_per_fqdn) anomalous.insert(name);
  }
  local.dropped_anomalous_fqdns = anomalous.size();

  std::vector<x509::Certificate> out;
  out.reserve(dedup.size());
  for (auto& [key, cert] : dedup) {
    const auto names = cert.dns_names();
    const bool drop = std::any_of(names.begin(), names.end(), [&](const auto& n) {
      return anomalous.contains(n);
    });
    if (drop) {
      ++local.dropped_certificates;
      continue;
    }
    out.push_back(std::move(cert));
  }
  if (stats) *stats = local;
  if (scope.enabled()) {
    // Funnel identity: entries_raw == corpus + dropped_duplicates +
    //                  dropped_anomalous.
    scope.count("entries_raw", local.raw_entries);
    scope.count("dropped_duplicates", local.raw_entries - local.after_dedup);
    scope.count("dropped_anomalous", local.dropped_certificates);
    scope.count("anomalous_fqdns", local.dropped_anomalous_fqdns);
    scope.count("corpus", out.size());
  }
  return out;
}

LogSet make_historical_log_ecosystem() {
  LogSet set;
  std::uint64_t next_id = 1;
  // Long-lived unsharded logs (pre-2020 era).
  set.add_log(CtLog{next_id++, "pilot", "Google", {.chrome = true, .apple = true}});
  set.add_log(CtLog{next_id++, "rocketeer", "Google", {.chrome = true, .apple = true}});
  set.add_log(CtLog{next_id++, "mammoth", "DigiCert", {.chrome = true, .apple = true}});
  set.add_log(CtLog{next_id++, "sabre", "Sectigo", {.chrome = true, .apple = false}});
  set.add_log(CtLog{next_id++, "untrusted-lab", "Example Labs", {.chrome = false, .apple = false}});
  // Yearly temporal shards 2019-2025 for two operators.
  for (int year = 2019; year <= 2025; ++year) {
    const util::DateInterval window{
        util::Date::from_ymd(year, 1, 1),
        util::Date::from_ymd(year + 1, 1, 1)};
    set.add_log(CtLog{next_id++, "argon" + std::to_string(year), "Google",
                      {.chrome = true, .apple = true}, window});
    set.add_log(CtLog{next_id++, "nimbus" + std::to_string(year), "Cloudflare",
                      {.chrome = true, .apple = true}, window});
  }
  return set;
}

}  // namespace stalecert::ct
