#include "stalecert/ct/monitor.hpp"

#include "stalecert/util/error.hpp"
#include "stalecert/util/strings.hpp"

namespace stalecert::ct {

LogMonitor::LogMonitor(const CtLog* log, std::uint64_t batch_size)
    : log_(log), batch_size_(batch_size) {
  if (!log_) throw LogicError("LogMonitor: null log");
  if (batch_size_ == 0) throw LogicError("LogMonitor: zero batch size");
}

void LogMonitor::watch(const std::string& domain) {
  watchlist_.insert(util::to_lower(domain));
}

bool LogMonitor::matches_watchlist(const x509::Certificate& cert) const {
  for (const auto& raw : cert.dns_names()) {
    std::string name = util::to_lower(raw);
    if (util::starts_with(name, "*.")) name = name.substr(2);
    // Match the name itself and every parent domain.
    while (!name.empty()) {
      if (watchlist_.contains(name)) return true;
      const auto dot = name.find('.');
      if (dot == std::string::npos) break;
      name = name.substr(dot + 1);
    }
  }
  return false;
}

LogMonitor::SyncResult LogMonitor::sync(util::Date now) {
  SyncResult result;
  const SignedTreeHead sth = log_->sth(now);
  if (sth.tree_size < verified_size_) {
    throw LogicError("LogMonitor: log shrank — tree is not append-only");
  }

  // Verify consistency of the new head against our last verified one.
  if (last_sth_ && sth.tree_size > verified_size_) {
    const auto proof = log_->consistency_proof(verified_size_, sth.tree_size);
    if (!verify_consistency(verified_size_, sth.tree_size, last_sth_->root_hash,
                            sth.root_hash, proof)) {
      throw LogicError("LogMonitor: consistency proof failed — equivocation");
    }
    result.consistency_verified = true;
  }

  // Download and process the new entries in batches.
  std::uint64_t cursor = verified_size_;
  while (cursor < sth.tree_size) {
    const std::uint64_t end = std::min(cursor + batch_size_, sth.tree_size);
    for (const auto& entry : log_->get_entries(cursor, end)) {
      ++result.new_entries;
      // Spot-check inclusion of the first entry of each batch.
      if (entry.index == cursor) {
        const auto proof = log_->inclusion_proof(entry.index, sth.tree_size);
        ++result.inclusion_checks;
        if (!verify_inclusion(log_->leaf_hash_at(entry.index), entry.index,
                              sth.tree_size, proof, sth.root_hash)) {
          ++result.inclusion_failures;
        }
      }
      if (!watchlist_.empty() && matches_watchlist(entry.certificate)) {
        result.watch_hits.push_back(entry);
        all_hits_.push_back(entry);
      }
    }
    cursor = end;
  }

  verified_size_ = sth.tree_size;
  last_sth_ = sth;
  return result;
}

}  // namespace stalecert::ct
