#include "stalecert/ct/merkle.hpp"

#include <bit>

#include "stalecert/util/error.hpp"

namespace stalecert::ct {
namespace {

/// Largest power of two strictly less than n (n >= 2), RFC 6962's k.
std::uint64_t split_point(std::uint64_t n) { return std::bit_floor(n - 1); }

}  // namespace

Digest leaf_hash(std::span<const std::uint8_t> entry) {
  crypto::Sha256 h;
  const std::uint8_t prefix = 0x00;
  h.update(std::span<const std::uint8_t>(&prefix, 1));
  h.update(entry);
  return h.finish();
}

Digest node_hash(const Digest& left, const Digest& right) {
  crypto::Sha256 h;
  const std::uint8_t prefix = 0x01;
  h.update(std::span<const std::uint8_t>(&prefix, 1));
  h.update(left);
  h.update(right);
  return h.finish();
}

Digest empty_tree_hash() { return crypto::Sha256::hash(std::string_view{}); }

std::uint64_t MerkleTree::append(std::span<const std::uint8_t> entry) {
  leaves_.push_back(leaf_hash(entry));
  return leaves_.size() - 1;
}

const Digest& MerkleTree::leaf(std::uint64_t index) const {
  if (index >= leaves_.size()) throw LogicError("MerkleTree: leaf out of range");
  return leaves_[index];
}

Digest MerkleTree::subtree_root(std::uint64_t begin, std::uint64_t end) const {
  const std::uint64_t n = end - begin;
  if (n == 0) return empty_tree_hash();
  if (n == 1) return leaves_[begin];
  const std::uint64_t k = split_point(n);
  return node_hash(subtree_root(begin, begin + k), subtree_root(begin + k, end));
}

Digest MerkleTree::root_at(std::uint64_t tree_size) const {
  if (tree_size > leaves_.size()) throw LogicError("MerkleTree: tree_size too large");
  return subtree_root(0, tree_size);
}

void MerkleTree::subtree_inclusion(std::uint64_t index, std::uint64_t begin,
                                   std::uint64_t end,
                                   std::vector<Digest>& path) const {
  const std::uint64_t n = end - begin;
  if (n == 1) return;
  const std::uint64_t k = split_point(n);
  if (index - begin < k) {
    subtree_inclusion(index, begin, begin + k, path);
    path.push_back(subtree_root(begin + k, end));
  } else {
    subtree_inclusion(index, begin + k, end, path);
    path.push_back(subtree_root(begin, begin + k));
  }
}

std::vector<Digest> MerkleTree::inclusion_proof(std::uint64_t index,
                                                std::uint64_t tree_size) const {
  if (tree_size > leaves_.size()) throw LogicError("MerkleTree: tree_size too large");
  if (index >= tree_size) throw LogicError("MerkleTree: index outside tree");
  std::vector<Digest> path;
  subtree_inclusion(index, 0, tree_size, path);
  return path;
}

void MerkleTree::subtree_consistency(std::uint64_t old_size, std::uint64_t begin,
                                     std::uint64_t end, bool old_is_complete,
                                     std::vector<Digest>& proof) const {
  const std::uint64_t n = end - begin;
  if (old_size == n) {
    if (!old_is_complete) proof.push_back(subtree_root(begin, end));
    return;
  }
  const std::uint64_t k = split_point(n);
  if (old_size <= k) {
    subtree_consistency(old_size, begin, begin + k, old_is_complete, proof);
    proof.push_back(subtree_root(begin + k, end));
  } else {
    subtree_consistency(old_size - k, begin + k, end, false, proof);
    proof.push_back(subtree_root(begin, begin + k));
  }
}

std::vector<Digest> MerkleTree::consistency_proof(std::uint64_t old_size,
                                                  std::uint64_t new_size) const {
  if (new_size > leaves_.size()) throw LogicError("MerkleTree: new_size too large");
  if (old_size > new_size) throw LogicError("MerkleTree: old_size > new_size");
  if (old_size == 0 || old_size == new_size) return {};
  std::vector<Digest> proof;
  subtree_consistency(old_size, 0, new_size, true, proof);
  return proof;
}

bool verify_inclusion(const Digest& leaf, std::uint64_t index,
                      std::uint64_t tree_size, std::span<const Digest> proof,
                      const Digest& root) {
  if (index >= tree_size) return false;
  std::uint64_t fn = index;
  std::uint64_t sn = tree_size - 1;
  Digest r = leaf;
  for (const Digest& p : proof) {
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      r = node_hash(p, r);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = node_hash(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == root;
}

bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size,
                        const Digest& old_root, const Digest& new_root,
                        std::span<const Digest> proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  if (old_size == 0) return proof.empty();

  std::vector<Digest> working(proof.begin(), proof.end());
  // If the old tree was a complete subtree, its root is implied rather
  // than carried in the proof.
  if (std::has_single_bit(old_size)) {
    working.insert(working.begin(), old_root);
  }
  if (working.empty()) return false;

  std::uint64_t fn = old_size - 1;
  std::uint64_t sn = new_size - 1;
  while ((fn & 1) == 1) {
    fn >>= 1;
    sn >>= 1;
  }
  Digest fr = working.front();
  Digest sr = working.front();
  for (std::size_t i = 1; i < working.size(); ++i) {
    const Digest& p = working[i];
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      fr = node_hash(p, fr);
      sr = node_hash(p, sr);
      if ((fn & 1) == 0) {
        while (fn != 0 && (fn & 1) == 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = node_hash(sr, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && fr == old_root && sr == new_root;
}

}  // namespace stalecert::ct
