#include "stalecert/ct/log.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::ct {

CtLog::CtLog(std::uint64_t id, std::string name, std::string log_operator,
             TrustFlags trust, std::optional<util::DateInterval> expiry_shard)
    : id_(id),
      name_(std::move(name)),
      operator_(std::move(log_operator)),
      trust_(trust),
      shard_(expiry_shard) {}

bool CtLog::accepts(const x509::Certificate& cert) const {
  if (!shard_) return true;
  // Temporal shards partition by certificate expiry date.
  return shard_->contains(cert.not_after());
}

std::optional<SignedCertificateTimestamp> CtLog::submit(
    const x509::Certificate& cert, util::Date now) {
  if (!accepts(cert)) return std::nullopt;
  const asn1::Bytes der = cert.to_der();
  const std::uint64_t index = tree_.append(der);
  entries_.push_back({index, now, cert});
  return SignedCertificateTimestamp{id_, index, now};
}

void CtLog::restore_entry(std::uint64_t index, util::Date timestamp,
                          const x509::Certificate& cert) {
  if (index != entries_.size()) {
    throw LogicError("CtLog::restore_entry: index " + std::to_string(index) +
                     " is not the next index " + std::to_string(entries_.size()));
  }
  const asn1::Bytes der = cert.to_der();
  tree_.append(der);
  entries_.push_back({index, timestamp, cert});
}

SignedTreeHead CtLog::sth(util::Date now) const { return sth_at(tree_.size(), now); }

SignedTreeHead CtLog::sth_at(std::uint64_t tree_size, util::Date now) const {
  return SignedTreeHead{id_, tree_size, tree_.root_at(tree_size), now};
}

std::vector<LogEntry> CtLog::get_entries(std::uint64_t begin, std::uint64_t end) const {
  if (begin > end) throw LogicError("CtLog::get_entries: begin > end");
  end = std::min<std::uint64_t>(end, entries_.size());
  begin = std::min(begin, end);
  return std::vector<LogEntry>(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
                               entries_.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace stalecert::ct
