#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "stalecert/revocation/crlite.hpp"
#include "stalecert/revocation/ocsp.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::tls {

/// How a TLS client treats revocation information (§2.4 of the paper).
enum class RevocationPolicy : std::uint8_t {
  kNone,      // Chrome, Edge, curl: no subscriber revocation checking
  kSoftFail,  // Firefox, Safari: check, but accept when unreachable
  kHardFail,  // strict: reject when status cannot be obtained
};

std::string to_string(RevocationPolicy policy);

/// A client's validation behaviour.
struct ClientProfile {
  std::string name;
  RevocationPolicy revocation = RevocationPolicy::kNone;
  /// Hard-fail when the certificate carries OCSP Must-Staple and no fresh
  /// staple is presented (Firefox is the one mainstream client doing this).
  bool enforce_must_staple = false;
  /// CT policy: require embedded SCTs (Chrome/Apple require CT logging for
  /// publicly-trusted certificates — which is why the paper's CT corpus is
  /// complete for their trust stores).
  bool require_sct = false;
};

/// Browser / user-agent presets as characterized in the paper.
ClientProfile chrome();
ClientProfile edge();
ClientProfile firefox();
ClientProfile safari();
ClientProfile curl_client();
ClientProfile hardened_client();  // hard-fail everything
/// All of the above, for matrix experiments.
std::vector<ClientProfile> all_profiles();

/// Root store: which issuing keys the client trusts.
class TrustStore {
 public:
  void trust(const crypto::Digest& issuer_key_id);
  [[nodiscard]] bool trusts(const crypto::Digest& issuer_key_id) const;
  [[nodiscard]] std::size_t size() const { return trusted_.size(); }

 private:
  std::set<std::string> trusted_;  // hex key ids
};

/// What the server side of a handshake presents.
struct ServerContext {
  x509::Certificate certificate;
  /// Can the presenter complete CertificateVerify? A third party holding a
  /// stale certificate's private key CAN; one without the key cannot.
  bool holds_private_key = true;
  /// Optional stapled OCSP response.
  std::optional<revocation::OcspResponse> staple;
};

/// Network view during the handshake. An on-path interceptor can drop
/// revocation traffic — the soft-fail bypass the paper describes.
struct Network {
  bool revocation_reachable = true;
  /// Issuer key id (hex) -> responder, as reachable via the cert's AIA.
  std::map<std::string, const revocation::OcspResponder*> responders;

  [[nodiscard]] const revocation::OcspResponder* responder_for(
      const crypto::Digest& issuer_key_id) const;
};

/// Result of one authentication attempt.
struct HandshakeResult {
  bool accepted = false;
  std::string reason;               // "ok" or the first failure
  bool revocation_checked = false;  // a status was actually consulted
  bool revocation_unavailable = false;
};

/// A TLS client performing server authentication: key possession, name
/// match, validity window, chain trust, then revocation according to the
/// profile's policy. Deliberately models the checks that matter for stale
/// certificates; see DESIGN.md for what is simplified.
class TlsClient {
 public:
  TlsClient(ClientProfile profile, TrustStore trust);

  [[nodiscard]] const ClientProfile& profile() const { return profile_; }

  /// Installs a CRLite-style pushed revocation filter (§7.2). The lookup
  /// is local, so an on-path attacker cannot block it — the property that
  /// would make revocation effective against stale-certificate abuse.
  void install_crlite(const revocation::CrliteFilter* filter) { crlite_ = filter; }

  [[nodiscard]] HandshakeResult connect(const std::string& hostname,
                                        util::Date now, const ServerContext& server,
                                        const Network& network) const;

 private:
  ClientProfile profile_;
  TrustStore trust_;
  const revocation::CrliteFilter* crlite_ = nullptr;
};

}  // namespace stalecert::tls
