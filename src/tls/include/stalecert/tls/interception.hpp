#pragma once

#include <string>
#include <vector>

#include "stalecert/tls/client.hpp"

namespace stalecert::tls {

/// An interception attempt by a third party holding a stale certificate's
/// private key (§3.4): the attacker sits on-path (ARP spoofing, malicious
/// ISP, DNS poisoning...) and answers the victim's TLS connection with the
/// stale certificate.
struct InterceptionScenario {
  std::string description;
  std::string hostname;             // domain the victim intended to reach
  x509::Certificate stale_certificate;
  util::Date when;
  bool attacker_holds_key = true;   // third-party stale certs: yes
  /// On-path attackers can drop CRL/OCSP traffic (the soft-fail bypass).
  bool attacker_blocks_revocation = true;
  /// Whether the CA has actually revoked the certificate by `when`.
  const revocation::OcspResponder* responder = nullptr;
  /// Optional pushed CRLite filter installed in EVERY client — models the
  /// §7.2 "what if CRLite shipped" mitigation.
  const revocation::CrliteFilter* crlite = nullptr;
};

/// Per-client outcome of the attempt.
struct InterceptionOutcome {
  std::string client;
  RevocationPolicy policy = RevocationPolicy::kNone;
  bool intercepted = false;  // client accepted the attacker's handshake
  std::string reason;
};

/// Runs the scenario against a set of client profiles sharing one trust
/// store and reports who gets intercepted — the experiment behind the
/// paper's claim that revocation "is absent or easily circumvented in
/// modern browsers".
std::vector<InterceptionOutcome> run_interception(
    const InterceptionScenario& scenario, const std::vector<ClientProfile>& clients,
    const TrustStore& trust);

}  // namespace stalecert::tls
