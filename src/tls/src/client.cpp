#include "stalecert/tls/client.hpp"

#include "stalecert/util/hex.hpp"

namespace stalecert::tls {

std::string to_string(RevocationPolicy policy) {
  switch (policy) {
    case RevocationPolicy::kNone: return "none";
    case RevocationPolicy::kSoftFail: return "soft-fail";
    case RevocationPolicy::kHardFail: return "hard-fail";
  }
  return "?";
}

ClientProfile chrome() {
  return {.name = "Chrome", .revocation = RevocationPolicy::kNone,
          .enforce_must_staple = false, .require_sct = true};
}
ClientProfile edge() {
  return {.name = "Edge", .revocation = RevocationPolicy::kNone,
          .enforce_must_staple = false, .require_sct = true};
}
ClientProfile firefox() {
  return {.name = "Firefox", .revocation = RevocationPolicy::kSoftFail,
          .enforce_must_staple = true, .require_sct = false};
}
ClientProfile safari() {
  return {.name = "Safari", .revocation = RevocationPolicy::kSoftFail,
          .enforce_must_staple = false, .require_sct = true};
}
ClientProfile curl_client() {
  return {.name = "curl", .revocation = RevocationPolicy::kNone,
          .enforce_must_staple = false, .require_sct = false};
}
ClientProfile hardened_client() {
  return {.name = "hardened", .revocation = RevocationPolicy::kHardFail,
          .enforce_must_staple = true, .require_sct = true};
}

std::vector<ClientProfile> all_profiles() {
  return {chrome(), edge(), firefox(), safari(), curl_client(), hardened_client()};
}

void TrustStore::trust(const crypto::Digest& issuer_key_id) {
  trusted_.insert(util::hex_encode(issuer_key_id));
}

bool TrustStore::trusts(const crypto::Digest& issuer_key_id) const {
  return trusted_.contains(util::hex_encode(issuer_key_id));
}

const revocation::OcspResponder* Network::responder_for(
    const crypto::Digest& issuer_key_id) const {
  const auto it = responders.find(util::hex_encode(issuer_key_id));
  return it == responders.end() ? nullptr : it->second;
}

TlsClient::TlsClient(ClientProfile profile, TrustStore trust)
    : profile_(std::move(profile)), trust_(std::move(trust)) {}

HandshakeResult TlsClient::connect(const std::string& hostname, util::Date now,
                                   const ServerContext& server,
                                   const Network& network) const {
  HandshakeResult result;
  const auto& cert = server.certificate;

  // 1. CertificateVerify: without the private key the handshake dies here,
  //    no matter how good the certificate looks.
  if (!server.holds_private_key) {
    result.reason = "server cannot prove possession of the private key";
    return result;
  }
  // 2. Name match.
  if (!cert.matches_domain(hostname)) {
    result.reason = "certificate does not cover '" + hostname + "'";
    return result;
  }
  // 3. Validity window.
  if (!cert.valid_at(now)) {
    result.reason = now < cert.not_before() ? "certificate not yet valid"
                                            : "certificate expired";
    return result;
  }
  // 4. Chain trust (modelled: issuer key must be in the root store).
  const auto& aki = cert.extensions().authority_key_id;
  if (!aki || !trust_.trusts(*aki)) {
    result.reason = "issuer not trusted";
    return result;
  }
  // 5. Precertificates are never valid server certificates.
  if (cert.is_precertificate()) {
    result.reason = "precertificate (poisoned) presented as leaf";
    return result;
  }
  // 5b. CT policy: Chrome-family clients require SCTs. Note this does NOT
  //     stop stale-certificate abuse — stale certificates were logged
  //     legitimately at issuance (§3.4).
  if (profile_.require_sct && cert.extensions().sct_log_ids.empty()) {
    result.reason = "CT policy: no SCTs embedded";
    return result;
  }

  // 6a. CRLite: a pushed, locally-queried revocation filter. Cannot be
  //     dropped by an on-path attacker, unlike OCSP/CRL fetches.
  if (crlite_ && aki) {
    result.revocation_checked = true;
    if (crlite_->is_revoked(revocation::crlite_key(*aki, cert.serial()))) {
      result.reason = "CRLite: certificate revoked";
      return result;
    }
  }

  // 6. Must-Staple (RFC 7633): clients that enforce it hard-fail without a
  //    fresh staple, closing the drop-the-OCSP-traffic loophole.
  const bool staple_fresh = server.staple && server.staple->fresh_at(now);
  if (cert.extensions().ocsp_must_staple && profile_.enforce_must_staple) {
    if (!staple_fresh) {
      result.reason = "OCSP Must-Staple: no fresh staple presented";
      return result;
    }
  }
  // A fresh staple that says "revoked" is fatal for any client that looks
  // at staples at all (everyone except pure no-revocation clients).
  if (staple_fresh && server.staple->status == revocation::CertStatus::kRevoked &&
      (profile_.revocation != RevocationPolicy::kNone ||
       profile_.enforce_must_staple)) {
    result.revocation_checked = true;
    result.reason = "stapled OCSP response: revoked";
    return result;
  }

  // 7. Active revocation checking per policy.
  if (profile_.revocation != RevocationPolicy::kNone) {
    if (staple_fresh) {
      result.revocation_checked = true;
      // status was kGood (revoked handled above): accept below.
    } else if (!network.revocation_reachable) {
      result.revocation_unavailable = true;
      if (profile_.revocation == RevocationPolicy::kHardFail) {
        result.reason = "revocation status unavailable (hard-fail)";
        return result;
      }
      // soft-fail: proceed without a status — the interception loophole.
    } else {
      const auto* responder = aki ? network.responder_for(*aki) : nullptr;
      if (!responder) {
        result.revocation_unavailable = true;
        if (profile_.revocation == RevocationPolicy::kHardFail) {
          result.reason = "no OCSP responder for issuer (hard-fail)";
          return result;
        }
      } else {
        const auto response = responder->query(cert.serial(), now);
        result.revocation_checked = true;
        if (response.status == revocation::CertStatus::kRevoked) {
          result.reason = "OCSP: certificate revoked";
          return result;
        }
        if (response.status == revocation::CertStatus::kUnknown &&
            profile_.revocation == RevocationPolicy::kHardFail) {
          result.reason = "OCSP: status unknown (hard-fail)";
          return result;
        }
      }
    }
  }

  result.accepted = true;
  result.reason = "ok";
  return result;
}

}  // namespace stalecert::tls
