#include "stalecert/tls/interception.hpp"

#include "stalecert/util/hex.hpp"

namespace stalecert::tls {

std::vector<InterceptionOutcome> run_interception(
    const InterceptionScenario& scenario, const std::vector<ClientProfile>& clients,
    const TrustStore& trust) {
  ServerContext attacker;
  attacker.certificate = scenario.stale_certificate;
  attacker.holds_private_key = scenario.attacker_holds_key;
  // An attacker never staples a response that would reveal revocation; if
  // the certificate requires stapling they simply omit it (and rely on
  // clients not enforcing Must-Staple).

  Network network;
  network.revocation_reachable = !scenario.attacker_blocks_revocation;
  if (scenario.responder) {
    const auto& aki = scenario.stale_certificate.extensions().authority_key_id;
    if (aki) {
      network.responders[util::hex_encode(*aki)] = scenario.responder;
    }
  }

  std::vector<InterceptionOutcome> outcomes;
  outcomes.reserve(clients.size());
  for (const auto& profile : clients) {
    TlsClient client(profile, trust);
    if (scenario.crlite) client.install_crlite(scenario.crlite);
    const HandshakeResult result =
        client.connect(scenario.hostname, scenario.when, attacker, network);
    outcomes.push_back({profile.name, profile.revocation, result.accepted,
                        result.reason});
  }
  return outcomes;
}

}  // namespace stalecert::tls
