#include "stalecert/revocation/reasons.hpp"

namespace stalecert::revocation {

std::string to_string(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kUnspecified: return "unspecified";
    case ReasonCode::kKeyCompromise: return "keyCompromise";
    case ReasonCode::kCaCompromise: return "cACompromise";
    case ReasonCode::kAffiliationChanged: return "affiliationChanged";
    case ReasonCode::kSuperseded: return "superseded";
    case ReasonCode::kCessationOfOperation: return "cessationOfOperation";
    case ReasonCode::kCertificateHold: return "certificateHold";
    case ReasonCode::kRemoveFromCrl: return "removeFromCRL";
    case ReasonCode::kPrivilegeWithdrawn: return "privilegeWithdrawn";
    case ReasonCode::kAaCompromise: return "aACompromise";
  }
  return "unknown";
}

std::optional<ReasonCode> reason_from_string(std::string_view name) {
  for (const auto reason :
       {ReasonCode::kUnspecified, ReasonCode::kKeyCompromise, ReasonCode::kCaCompromise,
        ReasonCode::kAffiliationChanged, ReasonCode::kSuperseded,
        ReasonCode::kCessationOfOperation, ReasonCode::kCertificateHold,
        ReasonCode::kRemoveFromCrl, ReasonCode::kPrivilegeWithdrawn,
        ReasonCode::kAaCompromise}) {
    if (to_string(reason) == name) return reason;
  }
  return std::nullopt;
}

bool mozilla_permitted(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kUnspecified:
    case ReasonCode::kKeyCompromise:
    case ReasonCode::kAffiliationChanged:
    case ReasonCode::kSuperseded:
    case ReasonCode::kCessationOfOperation:
    case ReasonCode::kPrivilegeWithdrawn:
      return true;
    default:
      return false;
  }
}

}  // namespace stalecert::revocation
