#include "stalecert/revocation/crlite.hpp"

#include <algorithm>
#include <cmath>

#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"

namespace stalecert::revocation {

BloomFilter::BloomFilter(std::size_t bits, unsigned hash_count, std::uint64_t salt)
    : bits_(std::max<std::size_t>(bits, 8), false),
      hash_count_(std::max(1u, hash_count)),
      salt_(salt) {}

std::size_t BloomFilter::position(const std::string& key, unsigned index) const {
  crypto::Sha256 h;
  std::uint8_t header[12];
  for (int i = 0; i < 8; ++i) header[i] = static_cast<std::uint8_t>(salt_ >> (i * 8));
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<std::uint8_t>(index >> (i * 8));
  }
  h.update(std::span<const std::uint8_t>(header, sizeof header));
  h.update(key);
  return static_cast<std::size_t>(crypto::digest_prefix64(h.finish()) %
                                  bits_.size());
}

void BloomFilter::insert(const std::string& key) {
  for (unsigned i = 0; i < hash_count_; ++i) bits_[position(key, i)] = true;
}

bool BloomFilter::maybe_contains(const std::string& key) const {
  for (unsigned i = 0; i < hash_count_; ++i) {
    if (!bits_[position(key, i)]) return false;
  }
  return true;
}

CrliteFilter CrliteFilter::build(const std::vector<std::string>& revoked,
                                 const std::vector<std::string>& valid,
                                 double bits_per_entry) {
  if (bits_per_entry < 2.0) throw LogicError("CrliteFilter: bits_per_entry too small");
  CrliteFilter filter;
  filter.revoked_count_ = revoked.size();
  filter.valid_count_ = valid.size();
  if (revoked.empty()) return filter;  // zero levels: nothing is revoked

  std::vector<std::string> include = revoked;
  std::vector<std::string> exclude = valid;
  std::uint64_t salt = 0x17e5'ca50ULL;
  while (!include.empty()) {
    if (filter.levels_.size() > 64) {
      throw LogicError("CrliteFilter: cascade failed to converge");
    }
    const auto bits = static_cast<std::size_t>(
        std::ceil(bits_per_entry * static_cast<double>(include.size())));
    const auto hashes =
        std::max(1u, static_cast<unsigned>(std::lround(0.69 * bits_per_entry)));
    BloomFilter level(bits, hashes, salt++);
    for (const auto& key : include) level.insert(key);

    std::vector<std::string> false_positives;
    for (const auto& key : exclude) {
      if (level.maybe_contains(key)) false_positives.push_back(key);
    }
    filter.levels_.push_back(std::move(level));
    exclude = std::move(include);
    include = std::move(false_positives);
  }
  return filter;
}

bool CrliteFilter::is_revoked(const std::string& key) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].maybe_contains(key)) {
      // A miss at an even level (0-based) clears the key; at an odd level
      // it confirms revocation.
      return i % 2 == 1;
    }
  }
  // Hit every level: the key sits in the deepest include set.
  return levels_.size() % 2 == 1;
}

std::size_t CrliteFilter::total_bytes() const {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.byte_size();
  return total;
}

std::string crlite_key(const crypto::Digest& issuer_key_id,
                       const std::vector<std::uint8_t>& serial) {
  return util::hex_encode(issuer_key_id) + ":" + util::hex_encode(serial);
}

}  // namespace stalecert::revocation
