#include "stalecert/revocation/ocsp.hpp"

#include "stalecert/util/hex.hpp"

namespace stalecert::revocation {

std::string to_string(CertStatus status) {
  switch (status) {
    case CertStatus::kGood: return "good";
    case CertStatus::kRevoked: return "revoked";
    case CertStatus::kUnknown: return "unknown";
  }
  return "?";
}

OcspResponder::OcspResponder(crypto::Digest issuer_key_id,
                             std::int64_t response_validity_days)
    : issuer_key_id_(issuer_key_id),
      response_validity_days_(response_validity_days) {}

bool OcspResponder::update_from_crl(const Crl& crl) {
  if (crl.authority_key_id() != issuer_key_id_) return false;
  for (const auto& entry : crl.entries()) {
    revoked_.insert_or_assign(util::hex_encode(entry.serial), entry);
  }
  initialized_ = true;
  last_update_ = std::max(last_update_, crl.this_update());
  return true;
}

OcspResponse OcspResponder::query(const asn1::Bytes& serial, util::Date now) const {
  OcspResponse response;
  response.produced_at = now;
  response.this_update = now;
  response.next_update = now + response_validity_days_;
  if (!initialized_) {
    response.status = CertStatus::kUnknown;
    return response;
  }
  const auto it = revoked_.find(util::hex_encode(serial));
  if (it == revoked_.end()) {
    response.status = CertStatus::kGood;
    return response;
  }
  response.status = CertStatus::kRevoked;
  response.revocation_time = it->second.revocation_date;
  response.reason = it->second.reason;
  return response;
}

}  // namespace stalecert::revocation
