#include "stalecert/revocation/crl.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"

namespace stalecert::revocation {

Crl::Crl(x509::DistinguishedName issuer, crypto::Digest authority_key_id,
         util::Date this_update, util::Date next_update)
    : issuer_(std::move(issuer)),
      aki_(authority_key_id),
      this_update_(this_update),
      next_update_(next_update) {
  if (next_update_ < this_update_) {
    throw LogicError("Crl: nextUpdate before thisUpdate");
  }
}

void Crl::add(RevokedEntry entry) {
  // Canonicalize the serial magnitude (DER INTEGER cannot carry leading
  // zero octets), so round-trips through to_der/from_der are identities.
  while (entry.serial.size() > 1 && entry.serial.front() == 0x00) {
    entry.serial.erase(entry.serial.begin());
  }
  entries_.push_back(std::move(entry));
}

bool Crl::is_revoked(std::span<const std::uint8_t> serial) const {
  return find(serial) != nullptr;
}

const RevokedEntry* Crl::find(std::span<const std::uint8_t> serial) const {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const auto& e) {
    return std::equal(e.serial.begin(), e.serial.end(), serial.begin(), serial.end());
  });
  return it == entries_.end() ? nullptr : &*it;
}

asn1::Bytes Crl::to_der() const {
  asn1::Encoder enc;
  enc.begin_sequence();  // CertificateList
  enc.begin_sequence();  // TBSCertList
  enc.write_integer(1);  // version v2
  enc.begin_sequence();  // signature algorithm
  enc.write_oid(asn1::oids::ecdsa_with_sha256());
  enc.end_sequence();
  issuer_.encode(enc);
  enc.write_time(this_update_);
  enc.write_time(next_update_);
  enc.begin_sequence();  // revokedCertificates
  for (const auto& entry : entries_) {
    enc.begin_sequence();
    enc.write_integer_bytes(entry.serial);
    enc.write_time(entry.revocation_date);
    enc.begin_sequence();  // crlEntryExtensions
    enc.begin_sequence();  // reasonCode extension
    enc.write_oid(asn1::oids::crl_reason());
    asn1::Encoder reason;
    reason.write_integer(static_cast<std::int64_t>(entry.reason));
    enc.write_octet_string(reason.bytes());
    enc.end_sequence();
    enc.end_sequence();
    enc.end_sequence();
  }
  enc.end_sequence();
  enc.begin_context(0);  // crlExtensions [0]: authority key id carrier
  enc.begin_sequence();
  enc.write_oid(asn1::oids::authority_key_id());
  asn1::Encoder aki;
  aki.write_octet_string(aki_);
  enc.write_octet_string(aki.bytes());
  enc.end_sequence();
  enc.end_context();
  enc.end_sequence();  // end TBSCertList

  enc.begin_sequence();  // signatureAlgorithm
  enc.write_oid(asn1::oids::ecdsa_with_sha256());
  enc.end_sequence();
  // Modelled signature: hash over issuer DN + thisUpdate.
  const crypto::Digest signature =
      crypto::Sha256::hash(issuer_.to_string() + "/" + this_update_.to_string());
  enc.write_bit_string(signature);
  enc.end_sequence();
  return enc.take();
}

Crl Crl::from_der(std::span<const std::uint8_t> der) {
  asn1::Decoder outer(der);
  asn1::Decoder list = outer.enter_sequence();
  asn1::Decoder tbs = list.enter_sequence();
  if (tbs.read_integer() != 1) throw ParseError("CRL: expected v2");
  {
    asn1::Decoder alg = tbs.enter_sequence();
    (void)alg.read_oid();
  }
  Crl crl;
  crl.issuer_ = x509::DistinguishedName::decode(tbs);
  crl.this_update_ = tbs.read_time();
  crl.next_update_ = tbs.read_time();
  {
    asn1::Decoder revoked = tbs.enter_sequence();
    while (!revoked.at_end()) {
      asn1::Decoder one = revoked.enter_sequence();
      RevokedEntry entry;
      entry.serial = one.read_integer_bytes();
      entry.revocation_date = one.read_time();
      if (!one.at_end()) {
        asn1::Decoder exts = one.enter_sequence();
        while (!exts.at_end()) {
          asn1::Decoder ext = exts.enter_sequence();
          const asn1::Oid oid = ext.read_oid();
          const asn1::Bytes value = ext.read_octet_string();
          if (oid == asn1::oids::crl_reason()) {
            asn1::Decoder body(value);
            entry.reason = static_cast<ReasonCode>(body.read_integer());
          }
        }
      }
      crl.entries_.push_back(std::move(entry));
    }
  }
  if (!tbs.at_end()) {
    const asn1::Tlv exts = tbs.read_any();
    if (exts.is_context(0)) {
      asn1::Decoder body(exts.content);
      while (!body.at_end()) {
        asn1::Decoder ext = body.enter_sequence();
        const asn1::Oid oid = ext.read_oid();
        const asn1::Bytes value = ext.read_octet_string();
        if (oid == asn1::oids::authority_key_id()) {
          asn1::Decoder inner(value);
          const asn1::Bytes id = inner.read_octet_string();
          if (id.size() == 32) std::copy(id.begin(), id.end(), crl.aki_.begin());
        }
      }
    }
  }
  return crl;
}

}  // namespace stalecert::revocation
