#include "stalecert/revocation/collector.hpp"

#include <algorithm>

#include "stalecert/util/error.hpp"
#include "stalecert/util/hex.hpp"

namespace stalecert::revocation {

std::string RevocationStore::key(const crypto::Digest& aki, const asn1::Bytes& serial) {
  return util::hex_encode(aki) + ":" + util::hex_encode(serial);
}

void RevocationStore::add(const crypto::Digest& authority_key_id,
                          const asn1::Bytes& serial, const Observation& obs) {
  const std::string k = key(authority_key_id, serial);
  const auto it = observations_.find(k);
  if (it == observations_.end() || obs.revocation_date < it->second.revocation_date) {
    observations_[k] = obs;
  }
}

std::vector<RevocationStore::Entry> RevocationStore::entries() const {
  std::vector<Entry> out;
  out.reserve(observations_.size());
  for (const auto& [key, observation] : observations_) {
    Entry entry;
    const auto sep = key.find(':');
    if (sep == std::string::npos) throw LogicError("RevocationStore: malformed key");
    const auto aki_bytes = util::hex_decode(std::string_view(key).substr(0, sep));
    if (aki_bytes.size() != entry.authority_key_id.size()) {
      throw LogicError("RevocationStore: malformed authority key id");
    }
    std::copy(aki_bytes.begin(), aki_bytes.end(), entry.authority_key_id.begin());
    entry.serial = util::hex_decode(std::string_view(key).substr(sep + 1));
    entry.observation = observation;
    out.push_back(std::move(entry));
  }
  return out;
}

const RevocationStore::Observation* RevocationStore::lookup(
    const crypto::Digest& authority_key_id, const asn1::Bytes& serial) const {
  const auto it = observations_.find(key(authority_key_id, serial));
  return it == observations_.end() ? nullptr : &it->second;
}

void CrlCollector::add_endpoint(DisclosedCrl endpoint) {
  if (!endpoint.fetch) throw LogicError("CrlCollector: endpoint without fetch fn");
  endpoints_.push_back(std::move(endpoint));
}

void CrlCollector::collect_daily(util::Date date) {
  for (const auto& endpoint : endpoints_) {
    auto& stats = coverage_[endpoint.ca_name];
    ++stats.attempted;
    if (rng_.chance(endpoint.failure_probability)) continue;  // scrape-blocked
    const auto bytes = endpoint.fetch(date);
    if (!bytes) continue;
    try {
      const Crl crl = Crl::from_der(*bytes);
      ++stats.succeeded;
      for (const auto& entry : crl.entries()) {
        store_.add(crl.authority_key_id(), entry.serial,
                   {entry.revocation_date, entry.reason});
      }
    } catch (const ParseError&) {
      ++parse_failures_;
    }
  }
}

void CrlCollector::collect_range(util::Date first, util::Date last) {
  for (util::Date d = first; d <= last; ++d) collect_daily(d);
}

CoverageStats CrlCollector::total_coverage() const {
  CoverageStats total;
  for (const auto& [ca, stats] : coverage_) {
    total.attempted += stats.attempted;
    total.succeeded += stats.succeeded;
  }
  return total;
}

}  // namespace stalecert::revocation
