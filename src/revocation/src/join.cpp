#include "stalecert/revocation/join.hpp"

namespace stalecert::revocation {

std::vector<RevokedCertificate> join_revocations(
    const std::vector<x509::Certificate>& corpus, const RevocationStore& store,
    const JoinFilters& filters, JoinStats* stats) {
  JoinStats local;
  local.corpus_size = corpus.size();
  std::vector<RevokedCertificate> out;

  for (const auto& cert : corpus) {
    const auto issuer_serial = cert.issuer_serial();
    if (!issuer_serial) continue;
    const auto* obs = store.lookup(issuer_serial->authority_key_id,
                                   issuer_serial->serial);
    if (!obs) continue;
    ++local.matched;

    if (obs->revocation_date < cert.not_before()) {
      ++local.dropped_before_valid;
      continue;
    }
    if (obs->revocation_date >= cert.not_after()) {
      ++local.dropped_after_expiry;
      continue;
    }
    if (filters.min_revocation_date &&
        obs->revocation_date < *filters.min_revocation_date) {
      ++local.dropped_before_cutoff;
      continue;
    }
    ++local.kept;
    out.push_back({cert, obs->revocation_date, obs->reason});
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace stalecert::revocation
