#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stalecert/asn1/der.hpp"
#include "stalecert/crypto/sha256.hpp"
#include "stalecert/revocation/reasons.hpp"
#include "stalecert/util/date.hpp"
#include "stalecert/x509/name.hpp"

namespace stalecert::revocation {

/// One revoked certificate as it appears on a CRL: serial + revocation
/// date + reason. CRLs do NOT carry the certificate body — the paper must
/// join these against CT via (authority key id, serial), see §4.1.
struct RevokedEntry {
  asn1::Bytes serial;
  util::Date revocation_date;
  ReasonCode reason = ReasonCode::kUnspecified;

  bool operator==(const RevokedEntry&) const = default;
};

/// A certificate revocation list for one issuing key.
class Crl {
 public:
  Crl() = default;
  Crl(x509::DistinguishedName issuer, crypto::Digest authority_key_id,
      util::Date this_update, util::Date next_update);

  void add(RevokedEntry entry);

  [[nodiscard]] const x509::DistinguishedName& issuer() const { return issuer_; }
  [[nodiscard]] const crypto::Digest& authority_key_id() const { return aki_; }
  [[nodiscard]] util::Date this_update() const { return this_update_; }
  [[nodiscard]] util::Date next_update() const { return next_update_; }
  [[nodiscard]] const std::vector<RevokedEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// True if the serial appears on this CRL.
  [[nodiscard]] bool is_revoked(std::span<const std::uint8_t> serial) const;
  [[nodiscard]] const RevokedEntry* find(std::span<const std::uint8_t> serial) const;

  /// Serializes as DER (CertificateList with a reasonCode CRL entry
  /// extension per revoked certificate).
  [[nodiscard]] asn1::Bytes to_der() const;
  static Crl from_der(std::span<const std::uint8_t> der);

  bool operator==(const Crl&) const = default;

 private:
  x509::DistinguishedName issuer_;
  crypto::Digest aki_{};
  util::Date this_update_;
  util::Date next_update_;
  std::vector<RevokedEntry> entries_;
};

}  // namespace stalecert::revocation
