#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stalecert/crypto/sha256.hpp"

namespace stalecert::revocation {

/// A fixed-size Bloom filter keyed by HMAC-SHA256 (level-salted), the
/// building block of the CRLite cascade.
class BloomFilter {
 public:
  BloomFilter(std::size_t bits, unsigned hash_count, std::uint64_t salt);

  void insert(const std::string& key);
  [[nodiscard]] bool maybe_contains(const std::string& key) const;

  [[nodiscard]] std::size_t bit_count() const { return bits_.size(); }
  [[nodiscard]] std::size_t byte_size() const { return (bits_.size() + 7) / 8; }

 private:
  [[nodiscard]] std::size_t position(const std::string& key, unsigned index) const;

  std::vector<bool> bits_;
  unsigned hash_count_;
  std::uint64_t salt_;
};

/// A CRLite-style Bloom-filter cascade (Larisch et al., S&P'17 — cited by
/// the paper as the promising path to effective revocation, §7.2): given
/// the complete sets of revoked and non-revoked certificates, builds a
/// sequence of filters whose combined answer is EXACT on the enrolled
/// universe — small enough to push to every client, and queried locally so
/// an on-path attacker cannot block it.
class CrliteFilter {
 public:
  /// Builds the cascade. Keys must be unique across the two sets.
  static CrliteFilter build(const std::vector<std::string>& revoked,
                            const std::vector<std::string>& valid,
                            double bits_per_entry = 12.0);

  /// Exact membership for keys drawn from the enrolled universe; for
  /// unknown keys the answer is a Bloom guess (callers enroll everything).
  [[nodiscard]] bool is_revoked(const std::string& key) const;

  [[nodiscard]] std::size_t level_count() const { return levels_.size(); }
  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::uint64_t enrolled_revoked() const { return revoked_count_; }
  [[nodiscard]] std::uint64_t enrolled_valid() const { return valid_count_; }

 private:
  CrliteFilter() = default;

  std::vector<BloomFilter> levels_;
  std::uint64_t revoked_count_ = 0;
  std::uint64_t valid_count_ = 0;
};

/// Canonical CRLite key for a certificate: issuer key id + serial.
std::string crlite_key(const crypto::Digest& issuer_key_id,
                       const std::vector<std::uint8_t>& serial);

}  // namespace stalecert::revocation
