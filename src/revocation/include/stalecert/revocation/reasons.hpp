#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stalecert::revocation {

/// RFC 5280 CRLReason codes. The paper (§3) critiques these as a taxonomy;
/// we keep them verbatim as the wire format and map them onto the paper's
/// invalidation-event taxonomy in core/.
enum class ReasonCode : std::uint8_t {
  kUnspecified = 0,
  kKeyCompromise = 1,
  kCaCompromise = 2,
  kAffiliationChanged = 3,
  kSuperseded = 4,
  kCessationOfOperation = 5,
  kCertificateHold = 6,
  // 7 is unused in RFC 5280
  kRemoveFromCrl = 8,
  kPrivilegeWithdrawn = 9,
  kAaCompromise = 10,
};

std::string to_string(ReasonCode reason);
std::optional<ReasonCode> reason_from_string(std::string_view name);

/// Mozilla policy permits six of the ten RFC 5280 reasons for subscriber
/// certificates (the paper cites this as evidence the codes are outdated).
bool mozilla_permitted(ReasonCode reason);

}  // namespace stalecert::revocation
