#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/revocation/crl.hpp"
#include "stalecert/util/rng.hpp"

namespace stalecert::revocation {

/// A CRL endpoint on the Mozilla CCADB disclosure list: which CA operates
/// it, where it lives, how to fetch today's DER bytes, and how likely a
/// fetch is to fail (some CRL servers have scrape protection — Appendix B
/// reports per-CA download coverage).
struct DisclosedCrl {
  std::string ca_name;
  std::string url;
  std::function<std::optional<asn1::Bytes>(util::Date)> fetch;
  double failure_probability = 0.0;
};

/// Per-CA download coverage, the content of Table 7.
struct CoverageStats {
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  [[nodiscard]] double ratio() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(succeeded) / static_cast<double>(attempted);
  }
};

/// Aggregated revocation observations keyed by (authority key id, serial) —
/// the join key back into CT. Keeps the earliest observed revocation.
class RevocationStore {
 public:
  struct Observation {
    util::Date revocation_date;
    ReasonCode reason = ReasonCode::kUnspecified;
  };

  /// One observation with its join key — the export unit for archival
  /// (stalecert::store) and debugging.
  struct Entry {
    crypto::Digest authority_key_id{};
    asn1::Bytes serial;
    Observation observation;
  };

  void add(const crypto::Digest& authority_key_id, const asn1::Bytes& serial,
           const Observation& obs);

  [[nodiscard]] const Observation* lookup(const crypto::Digest& authority_key_id,
                                          const asn1::Bytes& serial) const;
  [[nodiscard]] std::size_t size() const { return observations_.size(); }

  /// Every observation with its decomposed join key, in deterministic
  /// (key-sorted) order. Re-add()ing them into an empty store rebuilds an
  /// identical store — the archive round-trip property.
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  static std::string key(const crypto::Digest& aki, const asn1::Bytes& serial);
  std::map<std::string, Observation> observations_;
};

/// Daily CRL collection pipeline (§4.1): walks the disclosure list,
/// simulates fetch failures, parses DER, and accumulates revocations.
class CrlCollector {
 public:
  explicit CrlCollector(std::uint64_t seed) : rng_(seed) {}

  void add_endpoint(DisclosedCrl endpoint);

  /// Runs one daily pass over every disclosed endpoint.
  void collect_daily(util::Date date);
  /// Runs daily passes over an inclusive date range.
  void collect_range(util::Date first, util::Date last);

  [[nodiscard]] const RevocationStore& store() const { return store_; }
  [[nodiscard]] const std::map<std::string, CoverageStats>& coverage() const {
    return coverage_;
  }
  [[nodiscard]] CoverageStats total_coverage() const;
  [[nodiscard]] std::uint64_t parse_failures() const { return parse_failures_; }

 private:
  util::Rng rng_;
  std::vector<DisclosedCrl> endpoints_;
  RevocationStore store_;
  std::map<std::string, CoverageStats> coverage_;
  std::uint64_t parse_failures_ = 0;
};

}  // namespace stalecert::revocation
