#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "stalecert/revocation/crl.hpp"
#include "stalecert/util/date.hpp"

namespace stalecert::revocation {

/// RFC 6960 certificate status values.
enum class CertStatus : std::uint8_t { kGood, kRevoked, kUnknown };

std::string to_string(CertStatus status);

/// A (signed) OCSP response for one certificate.
struct OcspResponse {
  CertStatus status = CertStatus::kUnknown;
  util::Date produced_at;
  util::Date this_update;
  util::Date next_update;  // staple/response freshness horizon
  std::optional<util::Date> revocation_time;
  std::optional<ReasonCode> reason;

  /// A response (or staple) is acceptable while it is fresh.
  [[nodiscard]] bool fresh_at(util::Date now) const {
    return this_update <= now && now < next_update;
  }
};

/// An OCSP responder for one issuing key. Fed from the issuer's CRL state
/// (real deployments generate OCSP from the same revocation database).
/// Response validity defaults to 7 days, the common production value that
/// bounds how long a revoked-but-cached staple stays usable.
class OcspResponder {
 public:
  OcspResponder(crypto::Digest issuer_key_id, std::int64_t response_validity_days = 7);

  [[nodiscard]] const crypto::Digest& issuer_key_id() const { return issuer_key_id_; }

  /// Refreshes the responder's view from a CRL published by the issuer.
  /// CRLs for other issuers are rejected (returns false).
  bool update_from_crl(const Crl& crl);

  /// Answers a status query at `now`. Serials the responder has never seen
  /// in any CRL are kGood (standard OCSP behaviour for issued certs);
  /// queries against a responder that was never fed any CRL return
  /// kUnknown.
  [[nodiscard]] OcspResponse query(const asn1::Bytes& serial, util::Date now) const;

  [[nodiscard]] std::uint64_t revoked_count() const { return revoked_.size(); }

 private:
  crypto::Digest issuer_key_id_;
  std::int64_t response_validity_days_;
  bool initialized_ = false;
  util::Date last_update_;
  std::map<std::string, RevokedEntry> revoked_;  // hex serial -> entry
};

}  // namespace stalecert::revocation
