#pragma once

#include <optional>
#include <vector>

#include "stalecert/revocation/collector.hpp"
#include "stalecert/x509/certificate.hpp"

namespace stalecert::revocation {

/// A revocation observation joined back to its full certificate.
struct RevokedCertificate {
  x509::Certificate certificate;
  util::Date revocation_date;
  ReasonCode reason = ReasonCode::kUnspecified;
};

/// Outlier filters from §4.1 of the paper: drop revocations issued before
/// the certificate was valid, after it expired, or before the analysis
/// cutoff (13 months prior to CRL collection start).
struct JoinFilters {
  std::optional<util::Date> min_revocation_date;  // paper: 2021-10-01
};

struct JoinStats {
  std::uint64_t corpus_size = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped_before_valid = 0;
  std::uint64_t dropped_after_expiry = 0;
  std::uint64_t dropped_before_cutoff = 0;
  std::uint64_t kept = 0;
};

/// Cross-references a RevocationStore against a CT certificate corpus via
/// (authority key id, serial).
std::vector<RevokedCertificate> join_revocations(
    const std::vector<x509::Certificate>& corpus, const RevocationStore& store,
    const JoinFilters& filters, JoinStats* stats = nullptr);

}  // namespace stalecert::revocation
