#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stalecert/util/date.hpp"

namespace stalecert::registrar {

/// gTLD domain lifecycle states (RGP model, cf. paper §2.1 and [50, 53]).
enum class DomainState : std::uint8_t {
  kAvailable,      // never registered or fully released
  kActive,         // registered, before expiration
  kAutoRenewGrace, // expired, registrar may still renew/transfer (45 days)
  kRedemption,     // registrant can redeem at a fee (30 days)
  kPendingDelete,  // scheduled for deletion (5 days), then released
};

std::string to_string(DomainState state);

/// Registrant identity. Stable per real-world owner, so registrant-change
/// ground truth is available to tests even though detectors may not see it.
using RegistrantId = std::uint64_t;

/// How a domain acquired its current registrant — the three change
/// scenarios in §2.1 of the paper.
enum class AcquisitionKind : std::uint8_t {
  kNewRegistration,    // fresh registration of an available name
  kTransfer,           // scenario 1: transfer between registrants (no new creation date)
  kPreReleaseTransfer, // scenario 2: sold during grace, before release
  kReRegistration,     // scenario 3: public re-registration / drop-catch
};

std::string to_string(AcquisitionKind kind);

/// Registry-side record for one domain.
struct Registration {
  std::string domain;
  RegistrantId registrant = 0;
  std::string registrar;
  util::Date creation_date;    // registry "Creation Date" — only resets on re-registration
  util::Date expiration_date;
  DomainState state = DomainState::kActive;
  AcquisitionKind acquired_by = AcquisitionKind::kNewRegistration;
};

/// Every ownership change, with ground truth the detectors don't get.
struct OwnershipChange {
  std::string domain;
  util::Date date;
  RegistrantId old_registrant = 0;
  RegistrantId new_registrant = 0;
  AcquisitionKind kind = AcquisitionKind::kNewRegistration;
  /// True iff the registry creation date changed — the only signal the
  /// paper's conservative WHOIS methodology can observe.
  bool creation_date_reset = false;
};

/// The registry: owns all Registration records and enforces legal lifecycle
/// transitions. Grace/redemption/pending-delete windows follow the gTLD
/// defaults the paper cites (45 / 30 / 5 days).
class Registry {
 public:
  struct Policy {
    std::int64_t auto_renew_grace_days = 45;
    std::int64_t redemption_days = 30;
    std::int64_t pending_delete_days = 5;
  };

  Registry();
  explicit Registry(Policy policy) : policy_(policy) {}

  /// Registers an available domain. Throws LogicError if not available.
  const Registration& register_domain(const std::string& domain,
                                      RegistrantId registrant,
                                      const std::string& registrar,
                                      util::Date date, int years = 1);

  /// Renews an active (or grace-period) domain for `years` more.
  void renew(const std::string& domain, util::Date date, int years = 1);

  /// Scenario 1: registrant-to-registrant transfer. Creation date kept.
  void transfer(const std::string& domain, RegistrantId new_registrant,
                const std::string& new_registrar, util::Date date);

  /// Scenario 2: registrar sells an expired-but-unreleased domain.
  /// Only legal in the auto-renew grace period. Creation date kept.
  void pre_release_transfer(const std::string& domain, RegistrantId new_registrant,
                            util::Date date);

  /// Voluntary deletion (e.g. registrar refund-window abuse): the domain is
  /// released immediately and becomes available.
  void delete_domain(const std::string& domain, util::Date date);

  /// Advances lifecycle state for all domains up to `date`; releases those
  /// whose pending-delete completed. Returns the domains released that day.
  std::vector<std::string> advance(util::Date date);

  [[nodiscard]] DomainState state(const std::string& domain) const;
  [[nodiscard]] const Registration* find(const std::string& domain) const;
  [[nodiscard]] std::vector<const Registration*> registered_domains() const;
  [[nodiscard]] const std::vector<OwnershipChange>& ownership_changes() const {
    return changes_;
  }

 private:
  Registration& require_active(const std::string& domain, const char* op);

  Policy policy_;
  std::map<std::string, Registration> registrations_;
  std::vector<OwnershipChange> changes_;
};

}  // namespace stalecert::registrar
