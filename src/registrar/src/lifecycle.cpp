#include "stalecert/registrar/lifecycle.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::registrar {

std::string to_string(DomainState state) {
  switch (state) {
    case DomainState::kAvailable: return "available";
    case DomainState::kActive: return "active";
    case DomainState::kAutoRenewGrace: return "auto-renew-grace";
    case DomainState::kRedemption: return "redemption";
    case DomainState::kPendingDelete: return "pending-delete";
  }
  return "?";
}

std::string to_string(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kNewRegistration: return "new-registration";
    case AcquisitionKind::kTransfer: return "transfer";
    case AcquisitionKind::kPreReleaseTransfer: return "pre-release-transfer";
    case AcquisitionKind::kReRegistration: return "re-registration";
  }
  return "?";
}

Registry::Registry() : Registry(Policy{}) {}

const Registration& Registry::register_domain(const std::string& domain,
                                              RegistrantId registrant,
                                              const std::string& registrar,
                                              util::Date date, int years) {
  if (years < 1 || years > 10) throw LogicError("register_domain: years out of 1..10");
  const auto it = registrations_.find(domain);
  const bool existed = it != registrations_.end();
  if (existed && it->second.state != DomainState::kAvailable) {
    throw LogicError("register_domain: '" + domain + "' is not available");
  }

  Registration reg;
  reg.domain = domain;
  reg.registrant = registrant;
  reg.registrar = registrar;
  reg.creation_date = date;
  reg.expiration_date = date + years * 365;
  reg.state = DomainState::kActive;
  reg.acquired_by =
      existed ? AcquisitionKind::kReRegistration : AcquisitionKind::kNewRegistration;

  OwnershipChange change;
  change.domain = domain;
  change.date = date;
  change.old_registrant = existed ? it->second.registrant : 0;
  change.new_registrant = registrant;
  change.kind = reg.acquired_by;
  change.creation_date_reset = true;  // registration always sets a fresh creation date
  changes_.push_back(change);

  auto [pos, inserted] = registrations_.insert_or_assign(domain, std::move(reg));
  return pos->second;
}

Registration& Registry::require_active(const std::string& domain, const char* op) {
  const auto it = registrations_.find(domain);
  if (it == registrations_.end() || it->second.state == DomainState::kAvailable) {
    throw LogicError(std::string(op) + ": '" + domain + "' is not registered");
  }
  return it->second;
}

void Registry::renew(const std::string& domain, util::Date /*date*/, int years) {
  Registration& reg = require_active(domain, "renew");
  if (reg.state != DomainState::kActive && reg.state != DomainState::kAutoRenewGrace &&
      reg.state != DomainState::kRedemption) {
    throw LogicError("renew: '" + domain + "' is " + to_string(reg.state));
  }
  if (years < 1 || years > 10) throw LogicError("renew: years out of 1..10");
  // Renewal always extends from the current expiration date (registry
  // convention), including grace/redemption restores.
  reg.expiration_date = reg.expiration_date + years * 365;
  reg.state = DomainState::kActive;
}

void Registry::transfer(const std::string& domain, RegistrantId new_registrant,
                        const std::string& new_registrar, util::Date date) {
  Registration& reg = require_active(domain, "transfer");
  if (reg.state != DomainState::kActive) {
    throw LogicError("transfer: '" + domain + "' is " + to_string(reg.state));
  }
  OwnershipChange change;
  change.domain = domain;
  change.date = date;
  change.old_registrant = reg.registrant;
  change.new_registrant = new_registrant;
  change.kind = AcquisitionKind::kTransfer;
  change.creation_date_reset = false;  // registry creation date survives transfers
  changes_.push_back(change);

  reg.registrant = new_registrant;
  reg.registrar = new_registrar;
  reg.acquired_by = AcquisitionKind::kTransfer;
}

void Registry::pre_release_transfer(const std::string& domain,
                                    RegistrantId new_registrant, util::Date date) {
  Registration& reg = require_active(domain, "pre_release_transfer");
  if (reg.state != DomainState::kAutoRenewGrace) {
    throw LogicError("pre_release_transfer: '" + domain + "' is " +
                     to_string(reg.state));
  }
  OwnershipChange change;
  change.domain = domain;
  change.date = date;
  change.old_registrant = reg.registrant;
  change.new_registrant = new_registrant;
  change.kind = AcquisitionKind::kPreReleaseTransfer;
  change.creation_date_reset = false;
  changes_.push_back(change);

  reg.registrant = new_registrant;
  reg.acquired_by = AcquisitionKind::kPreReleaseTransfer;
  reg.expiration_date = date + 365;
  reg.state = DomainState::kActive;
}

void Registry::delete_domain(const std::string& domain, util::Date) {
  Registration& reg = require_active(domain, "delete_domain");
  reg.state = DomainState::kAvailable;
}

std::vector<std::string> Registry::advance(util::Date date) {
  std::vector<std::string> released;
  for (auto& [domain, reg] : registrations_) {
    if (reg.state == DomainState::kAvailable) continue;
    const util::Date grace_end = reg.expiration_date + policy_.auto_renew_grace_days;
    const util::Date redemption_end = grace_end + policy_.redemption_days;
    const util::Date delete_end = redemption_end + policy_.pending_delete_days;
    DomainState next = reg.state;
    if (date < reg.expiration_date) {
      next = DomainState::kActive;
    } else if (date < grace_end) {
      next = DomainState::kAutoRenewGrace;
    } else if (date < redemption_end) {
      next = DomainState::kRedemption;
    } else if (date < delete_end) {
      next = DomainState::kPendingDelete;
    } else {
      next = DomainState::kAvailable;
      released.push_back(domain);
    }
    reg.state = next;
  }
  return released;
}

DomainState Registry::state(const std::string& domain) const {
  const auto it = registrations_.find(domain);
  return it == registrations_.end() ? DomainState::kAvailable : it->second.state;
}

const Registration* Registry::find(const std::string& domain) const {
  const auto it = registrations_.find(domain);
  if (it == registrations_.end() || it->second.state == DomainState::kAvailable) {
    return nullptr;
  }
  return &it->second;
}

std::vector<const Registration*> Registry::registered_domains() const {
  std::vector<const Registration*> out;
  for (const auto& [domain, reg] : registrations_) {
    if (reg.state != DomainState::kAvailable) out.push_back(&reg);
  }
  return out;
}

}  // namespace stalecert::registrar
