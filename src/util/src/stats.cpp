#include "stalecert/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stalecert/util/error.hpp"

namespace stalecert::util {

void EmpiricalDistribution::add_all(std::span<const double> values) {
  values_.reserve(values_.size() + values.size());
  values_.insert(values_.end(), values.begin(), values.end());
  sorted_ = false;
}

void EmpiricalDistribution::add_all(std::vector<double>&& values) {
  if (values_.empty()) {
    values_ = std::move(values);
  } else {
    values_.reserve(values_.size() + values.size());
    values_.insert(values_.end(), values.begin(), values.end());
  }
  sorted_ = false;
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(std::distance(values_.begin(), it)) /
         static_cast<double>(values_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  if (values_.empty()) throw LogicError("quantile of empty distribution");
  if (q < 0.0 || q > 1.0) throw LogicError("quantile q out of [0,1]");
  ensure_sorted();
  if (q == 0.0) return values_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size())));
  return values_[std::min(rank, values_.size()) - 1];
}

double EmpiricalDistribution::min() const {
  if (values_.empty()) throw LogicError("min of empty distribution");
  ensure_sorted();
  return values_.front();
}

double EmpiricalDistribution::max() const {
  if (values_.empty()) throw LogicError("max of empty distribution");
  ensure_sorted();
  return values_.back();
}

double EmpiricalDistribution::mean() const {
  if (values_.empty()) throw LogicError("mean of empty distribution");
  return sum() / static_cast<double>(values_.size());
}

double EmpiricalDistribution::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_series(
    const std::vector<double>& xs) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(xs.size());
  for (const double x : xs) out.emplace_back(x, cdf(x));
  return out;
}

const std::vector<double>& EmpiricalDistribution::sorted_values() const {
  ensure_sorted();
  return values_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw LogicError("Histogram: bad bounds/bins");
}

void Histogram::add(double value) {
  const double clamped = std::clamp(value, lo_, std::nexttoward(hi_, lo_));
  const auto bin = static_cast<std::size_t>(
      (clamped - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  counts_[std::min(bin, counts_.size() - 1)]++;
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  if (bin >= counts_.size()) throw LogicError("Histogram: bin out of range");
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::uint64_t LabelCounter::count(const std::string& label) const {
  const auto it = counts_.find(label);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t LabelCounter::total() const {
  std::uint64_t sum = 0;
  for (const auto& [label, n] : counts_) sum += n;
  return sum;
}

std::vector<std::pair<std::string, std::uint64_t>> LabelCounter::sorted() const {
  std::vector<std::pair<std::string, std::uint64_t>> out(counts_.begin(),
                                                         counts_.end());
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

}  // namespace stalecert::util
