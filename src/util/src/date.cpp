#include "stalecert/util/date.hpp"

#include <array>
#include <charconv>
#include <ostream>

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

// Howard Hinnant's civil-date algorithms (chrono-compatible, public domain).
constexpr std::int64_t days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr Date::Ymd civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);               // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);               // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                    // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                                 // [1, 12]
  return {static_cast<int>(y + (m <= 2)), m, d};
}

int parse_int(std::string_view s) {
  int value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw ParseError("invalid number in date: '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace

unsigned days_in_month(int year, unsigned month) {
  static constexpr std::array<unsigned, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                     31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) {
    throw LogicError("month out of range: " + std::to_string(month));
  }
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

Date Date::from_ymd(int year, unsigned month, unsigned day) {
  if (month < 1 || month > 12 || day < 1 || day > days_in_month(year, month)) {
    throw ParseError("invalid civil date " + std::to_string(year) + "-" +
                     std::to_string(month) + "-" + std::to_string(day));
  }
  return Date{days_from_civil(year, month, day)};
}

Date Date::parse(std::string_view iso8601) {
  if (iso8601.size() != 10 || iso8601[4] != '-' || iso8601[7] != '-') {
    throw ParseError("expected YYYY-MM-DD, got '" + std::string(iso8601) + "'");
  }
  const int y = parse_int(iso8601.substr(0, 4));
  const int m = parse_int(iso8601.substr(5, 2));
  const int d = parse_int(iso8601.substr(8, 2));
  return from_ymd(y, static_cast<unsigned>(m), static_cast<unsigned>(d));
}

Date::Ymd Date::to_ymd() const { return civil_from_days(days_); }

std::string Date::to_string() const {
  const Ymd ymd = to_ymd();
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", ymd.year, ymd.month, ymd.day);
  return buf;
}

std::ostream& operator<<(std::ostream& os, Date d) { return os << d.to_string(); }

YearMonth YearMonth::of(Date d) {
  const auto ymd = d.to_ymd();
  return {ymd.year, ymd.month};
}

Date YearMonth::first_day() const { return Date::from_ymd(year, month, 1); }

YearMonth YearMonth::next() const {
  if (month == 12) return {year + 1, 1};
  return {year, month + 1};
}

std::string YearMonth::to_string() const {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%04d-%02u", year, month);
  return buf;
}

}  // namespace stalecert::util
