#include "stalecert/util/hex.hpp"

#include "stalecert/util/error.hpp"

namespace stalecert::util {
namespace {

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0x0f];
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex string with odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("invalid hex digit");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace stalecert::util
