#include "stalecert/util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace stalecert::util {

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0) throw LogicError("poisson: negative lambda");
  if (lambda == 0) return 0;
  if (lambda < 60.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double value = normal(lambda, std::sqrt(lambda)) + 0.5;
  return value <= 0 ? 0 : static_cast<std::uint64_t>(value);
}

std::uint64_t Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0) throw LogicError("geometric: p out of (0,1]");
  if (p == 1.0) return 0;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(angle);
  have_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  if (weights.empty()) throw LogicError("weighted_pick: empty weights");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw LogicError("weighted_pick: non-positive total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::alpha_label(std::size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + below(26));
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw LogicError("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double cumulative = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    cumulative += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cdf_[rank - 1] = cumulative;
  }
  for (auto& value : cdf_) value /= cumulative;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it)) + 1;
}

}  // namespace stalecert::util
