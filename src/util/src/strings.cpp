#include "stalecert/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace stalecert::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool wildcard_match(std::string_view pattern, std::string_view value) {
  const auto star = pattern.find('*');
  if (star == std::string_view::npos) return pattern == value;
  const auto prefix = pattern.substr(0, star);
  const auto suffix = pattern.substr(star + 1);
  if (value.size() < prefix.size() + suffix.size()) return false;
  return starts_with(value, prefix) && ends_with(value, suffix);
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string percent(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace stalecert::util
