#include "stalecert/util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "stalecert/util/error.hpp"

namespace stalecert::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw LogicError("TextTable: empty header");
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back({std::move(cells), false});
  return *this;
}

TextTable& TextTable::add_rule() {
  if (!rows_.empty()) rows_.back().rule_after = true;
  return *this;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto emit_line = [&](const std::vector<std::string>& cells, std::ostringstream& os) {
    os << "| ";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
      os << (i + 1 == cells.size() ? " |" : " | ");
    }
    os << '\n';
  };
  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_line(header_, os);
  emit_rule(os);
  for (const auto& row : rows_) {
    emit_line(row.cells, os);
    if (row.rule_after) emit_rule(os);
  }
  if (rows_.empty() || !rows_.back().rule_after) emit_rule(os);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_csv() const {
  auto csv_escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row.cells[i]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace stalecert::util
