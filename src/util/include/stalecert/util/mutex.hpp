#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "stalecert/util/thread_annotations.hpp"

namespace stalecert::util {

/// The project's mutex: a std::mutex annotated as a Clang Thread Safety
/// Analysis capability, so fields tagged GUARDED_BY(mu) and functions
/// tagged REQUIRES(mu) are checked at compile time (see
/// thread_annotations.hpp). stalecert_lint's raw-mutex rule bans
/// std::mutex outside src/util, making this wrapper the only way
/// concurrent subsystems take locks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { inner_.lock(); }
  void unlock() RELEASE() { inner_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return inner_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex inner_;
};

/// RAII lock for util::Mutex — the annotated equivalent of
/// std::lock_guard. The analysis treats the guarded scope as holding the
/// mutex, so `const MutexLock lock(mu);` unlocks GUARDED_BY(mu) fields
/// for the rest of the block.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait_for() must be called
/// with the mutex held (enforced by REQUIRES under Clang), matching the
/// std::condition_variable contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Waits until `predicate` is true or `timeout` elapses, releasing the
  /// mutex while parked and re-holding it on return. Returns the final
  /// predicate value. The predicate runs with the mutex held and must not
  /// throw (a throw would double-unlock).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mutex, std::chrono::duration<Rep, Period> timeout,
                Predicate predicate) REQUIRES(mutex) {
    // Adopt the already-held lock for the wait, then release the
    // unique_lock's ownership so the caller's MutexLock stays the sole
    // unlocker.
    std::unique_lock<std::mutex> lock(mutex.inner_, std::adopt_lock);
    const bool result = cv_.wait_for(lock, timeout, std::move(predicate));
    lock.release();
    return result;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace stalecert::util
