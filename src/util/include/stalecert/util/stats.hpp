#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace stalecert::util {

/// Empirical distribution over observed values (e.g. staleness days).
/// Supports CDF evaluation, quantiles and summary statistics — the
/// machinery behind Figures 6, 7 and 8 of the paper.
class EmpiricalDistribution {
 public:
  void add(double value) { values_.push_back(value); sorted_ = false; }
  /// Bulk insert; reserves up front so large batches (Fig. 6/7/8 series,
  /// obs histogram dumps) don't reallocate per element. Accepts any
  /// contiguous range of doubles.
  void add_all(std::span<const double> values);
  /// Bulk insert from an rvalue vector; adopts the buffer outright when
  /// the distribution is empty.
  void add_all(std::vector<double>&& values);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// P(X <= x). Returns 0 for an empty distribution.
  [[nodiscard]] double cdf(double x) const;
  /// q-quantile for q in [0, 1] (nearest-rank). Throws on empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const;

  /// Survival function S(x) = P(X > x) = 1 - CDF(x). Figure 8's
  /// "proportion not yet stale after n days" is exactly this applied to
  /// time-from-issuance-to-invalidation.
  [[nodiscard]] double survival(double x) const { return 1.0 - cdf(x); }

  /// Evaluates the CDF at each point, producing a plottable series.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_series(
      const std::vector<double>& xs) const;

  [[nodiscard]] const std::vector<double>& sorted_values() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Counter keyed by string label (issuer names, CA names, malware families).
class LabelCounter {
 public:
  void add(const std::string& label, std::uint64_t n = 1) { counts_[label] += n; }
  [[nodiscard]] std::uint64_t count(const std::string& label) const;
  [[nodiscard]] std::uint64_t total() const;
  /// Labels sorted by descending count.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted() const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& raw() const {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace stalecert::util
