#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "stalecert/util/date.hpp"

namespace stalecert::util {

/// A half-open day interval [begin, end). Used for certificate validity
/// windows, registration lifespans and staleness periods.
///
/// Invariant: begin <= end (an empty interval has begin == end).
class DateInterval {
 public:
  constexpr DateInterval() = default;
  constexpr DateInterval(Date begin, Date end) : begin_(begin), end_(end) {
    if (end_ < begin_) end_ = begin_;
  }

  [[nodiscard]] constexpr Date begin() const { return begin_; }
  [[nodiscard]] constexpr Date end() const { return end_; }
  [[nodiscard]] constexpr std::int64_t days() const { return end_ - begin_; }
  [[nodiscard]] constexpr bool empty() const { return begin_ == end_; }

  [[nodiscard]] constexpr bool contains(Date d) const {
    return begin_ <= d && d < end_;
  }
  [[nodiscard]] constexpr bool overlaps(const DateInterval& other) const {
    return begin_ < other.end_ && other.begin_ < end_;
  }

  /// Intersection with another interval; empty result anchored at the later
  /// begin when they do not overlap.
  [[nodiscard]] constexpr DateInterval intersect(const DateInterval& other) const {
    const Date b = std::max(begin_, other.begin_);
    const Date e = std::min(end_, other.end_);
    return e < b ? DateInterval{b, b} : DateInterval{b, e};
  }

  /// Clamps the interval to at most `max_days` from its begin. This is the
  /// paper's lifetime-cap transformation (Section 6): certificates longer
  /// than the cap get their expiration pulled in; shorter ones are untouched.
  [[nodiscard]] constexpr DateInterval clamp_duration(std::int64_t max_days) const {
    if (days() <= max_days) return *this;
    return DateInterval{begin_, begin_ + max_days};
  }

  constexpr bool operator==(const DateInterval&) const = default;

 private:
  Date begin_;
  Date end_;
};

/// Staleness period of a certificate: from the invalidation event until the
/// certificate's expiration, empty if the event falls outside the validity
/// window. Returns nullopt when the event happens at-or-after expiry (the
/// certificate never becomes a usable stale certificate).
[[nodiscard]] constexpr std::optional<DateInterval> staleness_period(
    const DateInterval& validity, Date invalidation_event) {
  if (invalidation_event < validity.begin()) {
    // Event precedes issuance: the whole validity window is stale.
    return validity;
  }
  if (invalidation_event >= validity.end()) return std::nullopt;
  return DateInterval{invalidation_event, validity.end()};
}

}  // namespace stalecert::util
