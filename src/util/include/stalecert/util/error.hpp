#pragma once

#include <stdexcept>
#include <string>

namespace stalecert {

/// Base class for all errors thrown by the stalecert libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input encountered while parsing an external format
/// (DER, WHOIS text, zone files, dates, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A caller violated an API precondition (invalid argument, out-of-range
/// index, illegal state transition, ...).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error("logic error: " + what) {}
};

}  // namespace stalecert
