#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stalecert::util {

/// Aligned plain-text table used by every benchmark binary to print the
/// paper's tables/figure series side-by-side with measured values.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);
  /// Horizontal separator after the most recently added row.
  TextTable& add_rule();

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  /// Writes comma-separated values (header + rows, rules skipped).
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_after = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace stalecert::util
