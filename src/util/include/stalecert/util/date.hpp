#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace stalecert::util {

/// A calendar day, stored as a count of days since the civil epoch
/// 1970-01-01 (proleptic Gregorian). Negative values are days before the
/// epoch. This is the primary time type for the measurement pipeline: all
/// of the paper's datasets (CT validity windows, WHOIS creation dates,
/// daily DNS snapshots, CRL revocation dates) have day granularity.
class Date {
 public:
  constexpr Date() = default;
  constexpr explicit Date(std::int64_t days_since_epoch)
      : days_(days_since_epoch) {}

  /// Builds a Date from a civil (year, month, day) triple.
  /// Throws ParseError if the triple does not name a real calendar day.
  static Date from_ymd(int year, unsigned month, unsigned day);

  /// Parses "YYYY-MM-DD". Throws ParseError on malformed input.
  static Date parse(std::string_view iso8601);

  [[nodiscard]] constexpr std::int64_t days_since_epoch() const { return days_; }

  struct Ymd {
    int year;
    unsigned month;  // 1..12
    unsigned day;    // 1..31
  };
  /// Converts back to a civil (year, month, day) triple.
  [[nodiscard]] Ymd to_ymd() const;

  [[nodiscard]] int year() const { return to_ymd().year; }
  [[nodiscard]] unsigned month() const { return to_ymd().month; }
  [[nodiscard]] unsigned day() const { return to_ymd().day; }

  /// ISO-8601 "YYYY-MM-DD".
  [[nodiscard]] std::string to_string() const;

  constexpr Date operator+(std::int64_t days) const { return Date{days_ + days}; }
  constexpr Date operator-(std::int64_t days) const { return Date{days_ - days}; }
  constexpr std::int64_t operator-(Date other) const { return days_ - other.days_; }
  constexpr Date& operator+=(std::int64_t days) {
    days_ += days;
    return *this;
  }
  constexpr Date& operator-=(std::int64_t days) {
    days_ -= days;
    return *this;
  }
  Date& operator++() {
    ++days_;
    return *this;
  }

  constexpr auto operator<=>(const Date&) const = default;

 private:
  std::int64_t days_ = 0;
};

std::ostream& operator<<(std::ostream& os, Date d);

/// A (year, month) pair used for monthly aggregation (Figures 4 and 5).
struct YearMonth {
  int year = 1970;
  unsigned month = 1;  // 1..12

  static YearMonth of(Date d);

  /// First day of the month.
  [[nodiscard]] Date first_day() const;
  /// Number of months since year 0, for arithmetic and ordering.
  [[nodiscard]] constexpr int index() const {
    return year * 12 + static_cast<int>(month) - 1;
  }
  [[nodiscard]] YearMonth next() const;
  /// "YYYY-MM".
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const YearMonth&) const = default;
};

/// Number of days in the given civil month.
unsigned days_in_month(int year, unsigned month);
/// True for proleptic-Gregorian leap years.
constexpr bool is_leap_year(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

}  // namespace stalecert::util
