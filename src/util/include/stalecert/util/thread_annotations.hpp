#pragma once

// Clang Thread Safety Analysis annotations (-Wthread-safety). Under Clang
// these expand to the `thread_safety` attribute family, letting the
// compiler prove lock discipline at compile time: every field tagged
// GUARDED_BY(mu) may only be touched while `mu` is held, functions tagged
// REQUIRES(mu) may only be called with `mu` held, and so on. Under any
// other compiler every macro expands to nothing, so GCC builds are
// unaffected (the CI static-analysis job builds with Clang and
// -Werror=thread-safety, which is where violations become build breaks).
//
// Convention (see DESIGN.md "Lock annotations"):
//   - Never use std::mutex directly outside src/util — use util::Mutex and
//     util::MutexLock from stalecert/util/mutex.hpp (stalecert_lint's
//     raw-mutex rule enforces this).
//   - Tag every field a mutex protects with GUARDED_BY(that_mutex).
//   - Tag *_locked() helpers with REQUIRES(that_mutex).
//   - Any deliberate escape (NO_THREAD_SAFETY_ANALYSIS) carries an inline
//     comment explaining why it is sound.

#if defined(__clang__) && !defined(SWIG)
#define STALECERT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STALECERT_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in
/// diagnostics).
#define CAPABILITY(x) STALECERT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (util::MutexLock).
#define SCOPED_CAPABILITY STALECERT_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be read or written while holding `x`.
#define GUARDED_BY(x) STALECERT_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by `x`.
#define PT_GUARDED_BY(x) STALECERT_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding every listed capability;
/// it neither acquires nor releases them.
#define REQUIRES(...) \
  STALECERT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define ACQUIRE(...) STALECERT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define RELEASE(...) STALECERT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function attempts to acquire; the first argument is the return
/// value that signals success.
#define TRY_ACQUIRE(...) \
  STALECERT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (the function acquires
/// them itself; holding them on entry would self-deadlock).
#define EXCLUDES(...) STALECERT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held; teaches the analysis
/// the fact without an acquire.
#define ASSERT_CAPABILITY(x) STALECERT_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) STALECERT_THREAD_ANNOTATION(lock_returned(x))

/// Opts one function out of the analysis entirely. Every use must carry an
/// inline comment explaining why the unchecked access is sound.
#define NO_THREAD_SAFETY_ANALYSIS \
  STALECERT_THREAD_ANNOTATION(no_thread_safety_analysis)
