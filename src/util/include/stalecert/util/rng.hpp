#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stalecert/util/error.hpp"

namespace stalecert::util {

/// splitmix64 — used to seed xoshiro and for stateless hashing of ids.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**). All simulations in this repository
/// are seeded explicitly so every benchmark and test is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw LogicError("Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (hi < lo) throw LogicError("Rng::between: hi < lo");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Poisson-distributed count (inversion for small lambda, normal
  /// approximation above 60 — adequate for workload generation).
  std::uint64_t poisson(double lambda);

  /// Geometric number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Log-normal with given underlying mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Picks an index in [0, weights.size()) proportional to weights.
  std::size_t weighted_pick(std::span<const double> weights);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw LogicError("Rng::pick on empty vector");
    return items[below(items.size())];
  }

  /// Random lowercase a-z string of the given length.
  std::string alpha_label(std::size_t length);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf-distributed rank sampler over {1..n} with exponent s, used for
/// domain popularity (Alexa-like) and traffic weights. Precomputes the
/// normalization once; sampling is O(log n) via binary search on the CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace stalecert::util
