#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stalecert::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy (domain names are case-insensitive).
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Glob-style match supporting a single '*' wildcard segment, as used by
/// certificate names (e.g. "*.example.com", "sni*.cloudflaressl.com").
bool wildcard_match(std::string_view pattern, std::string_view value);

/// Formats n with thousands separators ("1,234,567") for table output.
std::string with_commas(std::uint64_t n);

/// Formats a ratio as a percentage string with the given precision.
std::string percent(double ratio, int decimals = 1);

}  // namespace stalecert::util
