#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stalecert::util {

/// Lowercase hex encoding of a byte span.
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (even length, [0-9a-fA-F]). Throws ParseError.
std::vector<std::uint8_t> hex_decode(std::string_view hex);

}  // namespace stalecert::util
